package hmmtask

import (
	"fmt"

	"mlbench/internal/gas"
	"mlbench/internal/models/hmm"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// GraphLab vertex layout: state vertices at [0, K), data super vertices
// above glDataBase.
const glDataBase gas.VertexID = 1 << 41

// glSVVtx is a super vertex holding a block of documents; its exported
// view is the full set of f/g/h count statistics for the block — the
// "around 10MB of data" per super vertex whose simultaneous
// materialization at the state vertices kills GraphLab beyond 5 machines.
type glSVVtx struct {
	docs   [][]int
	states [][]int
	counts *hmm.Counts
	sc     hmm.Scratch
}

// glStateVtx is one hidden state.
type glStateVtx struct{ s int }

// glHMMEdges: complete bipartite between super vertices and state
// vertices, expressed implicitly.
type glHMMEdges struct {
	svIDs    []gas.VertexID
	stateIDs []gas.VertexID
}

func (e *glHMMEdges) Neighbors(v gas.VertexID) []gas.VertexID {
	if v >= glDataBase {
		return e.stateIDs
	}
	return e.svIDs
}

// glHMMState carries the model across rounds.
type glHMMState struct {
	cfg    Config
	h      hmm.Hyper
	model  *hmm.Model
	rng    *randgen.RNG
	counts *hmm.Counts // gathered this round by state vertex 0
	scale  float64
	iter   int
}

type glHMMGather struct {
	isModel bool
	counts  *hmm.Counts
	owned   bool
}

type glHMMProg struct{ st *glHMMState }

func (p *glHMMProg) ViewBytes(v *gas.Vertex) int64 {
	if _, ok := v.Data.(*glSVVtx); ok {
		return countsViewBytes(p.st.cfg.K, p.st.cfg.V)
	}
	return modelBytes(p.st.cfg.K, p.st.cfg.V) / int64(p.st.cfg.K)
}

func (p *glHMMProg) Gather(m *sim.Meter, v, nbr *gas.Vertex) any {
	if _, ok := v.Data.(*glSVVtx); ok {
		return glHMMGather{isModel: true}
	}
	sv := nbr.Data.(*glSVVtx)
	m.ChargeLinalgAbs(1, float64(p.st.cfg.K*p.st.cfg.V), 1)
	return glHMMGather{counts: sv.counts}
}

func (p *glHMMProg) Sum(m *sim.Meter, a, b any) any {
	av, bv := a.(glHMMGather), b.(glHMMGather)
	if av.isModel {
		return av
	}
	m.ChargeLinalgAbs(1, float64(p.st.cfg.K*p.st.cfg.V), 1)
	if !av.owned {
		merged := hmm.NewCounts(p.st.cfg.K, p.st.cfg.V)
		if av.counts != nil {
			merged.Merge(av.counts)
		}
		av.counts, av.owned = merged, true
	}
	if bv.counts != nil {
		av.counts.Merge(bv.counts)
	}
	return av
}

func (p *glHMMProg) Apply(m *sim.Meter, v *gas.Vertex, acc any) {
	cfg := p.st.cfg
	switch d := v.Data.(type) {
	case *glSVVtx:
		c := hmm.NewCounts(cfg.K, cfg.V)
		for i, doc := range d.docs {
			m.ChargeBulk(float64(len(doc)) * hmm.StateFlopsTier(cfg.Sampler, cfg.K) / 2)
			p.st.model.ResampleStatesTier(m.RNG(), doc, d.states[i], p.roundIter(), cfg.Sampler, &d.sc)
			c.Accumulate(doc, d.states[i], p.st.scale)
		}
		d.counts = c
	case *glStateVtx:
		if acc == nil {
			return
		}
		gv := acc.(glHMMGather)
		if gv.isModel || gv.counts == nil {
			return
		}
		if d.s == 0 {
			if !gv.owned {
				merged := hmm.NewCounts(cfg.K, cfg.V)
				merged.Merge(gv.counts)
				gv.counts = merged
			}
			p.st.counts = gv.counts
		}
	}
}

// roundIter returns the current Gibbs iteration (tracked externally).
func (p *glHMMProg) roundIter() int { return p.st.iter }

// RunGraphLab implements the super-vertex GraphLab HMM of Figure 3(b).
// It runs at 5 machines (20:39 per iteration in the paper) but the
// simultaneous materialization of every super vertex's ~10MB count view
// at the state vertices — multiplied by the asynchronous engine's
// in-flight depth — exhausts memory at 20 machines and beyond.
func RunGraphLab(cl *sim.Cluster, cfg Config) (*task.Result, error) {
	cfg = cfg.withDefaults()
	cfg.Variant = VariantSV
	res := &task.Result{}
	sw := task.NewStopwatch(cl)

	g := gas.NewGraph(cl, nil)
	if g.Clamped() {
		res.Note("GraphLab booted on %d of %d machines", g.EffectiveMachines(), cl.NumMachines())
	}
	rng := randgen.New(cfg.Seed ^ 0x94a1)
	h := cfg.hyper()
	st := &glHMMState{cfg: cfg, h: h, rng: rng, scale: cl.Scale()}
	st.model = hmm.Init(rng, h)
	refreshProposals(cfg, nil, st.model)

	var svIDs, stateIDs []gas.VertexID
	machineDocs := make([][][]int, g.EffectiveMachines())
	for mc := 0; mc < g.EffectiveMachines(); mc++ {
		docs := genMachineDocs(cl, cfg, mc)
		machineDocs[mc] = docs
		nsv := cfg.SVPerMachine // super vertices partition the paper-scale corpus; blocks may be empty at high scale-down
		for s := 0; s < nsv; s++ {
			lo, hi := s*len(docs)/nsv, (s+1)*len(docs)/nsv
			sv := &glSVVtx{docs: docs[lo:hi]}
			var words int
			for _, d := range sv.docs {
				sv.states = append(sv.states, hmm.InitStates(rng, d, cfg.K))
				words += len(d)
			}
			sv.counts = hmm.NewCounts(cfg.K, cfg.V)
			for i, d := range sv.docs {
				sv.counts.Accumulate(d, sv.states[i], cl.Scale())
			}
			id := glDataBase + gas.VertexID(mc*cfg.SVPerMachine+s)
			bytes := int64(float64(2*8*words) * cl.Scale())
			g.AddVertex(id, sv, bytes, false, mc)
			svIDs = append(svIDs, id)
		}
	}
	for s := 0; s < cfg.K; s++ {
		id := gas.VertexID(s)
		g.AddVertex(id, &glStateVtx{s: s}, modelBytes(cfg.K, cfg.V)/int64(cfg.K), false, s%g.EffectiveMachines())
		stateIDs = append(stateIDs, id)
	}
	g.SetEdges(&glHMMEdges{svIDs: svIDs, stateIDs: stateIDs})
	if err := g.Load(); err != nil {
		return res, fmt.Errorf("hmm graphlab: load: %w", err)
	}
	res.InitSec = sw.Lap()

	prog := &glHMMProg{st: st}
	for iter := 0; iter < cfg.Iterations; iter++ {
		st.iter = iter
		st.counts = nil
		if err := g.RunRound(prog, nil); err != nil {
			return res, fmt.Errorf("hmm graphlab iter %d: %w", iter, err)
		}
		if st.counts == nil {
			return res, fmt.Errorf("hmm graphlab iter %d: no counts gathered", iter)
		}
		if err := cl.RunDriver("hmm-gl-update", func(m *sim.Meter) error {
			m.SetProfile(sim.ProfileCPP)
			m.ChargeLinalgAbs(cfg.K, float64(cfg.V+cfg.K), 1)
			st.model.UpdateModel(rng, h, st.counts)
			refreshProposals(cfg, m, st.model)
			return nil
		}); err != nil {
			return res, err
		}
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}

	// Quality diagnostic from machine 0's super vertices.
	var docs [][]int
	var states [][]int
	for _, id := range svIDs {
		v := g.Vertex(id)
		if v.Machine() != 0 {
			continue
		}
		sv := v.Data.(*glSVVtx)
		docs = append(docs, sv.docs...)
		states = append(states, sv.states...)
	}
	recordQuality(cl, cfg, st.model, states, docs, res)
	return res, nil
}
