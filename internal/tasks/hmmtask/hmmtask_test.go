package hmmtask

import (
	"testing"

	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

func smallCluster(machines int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 1000
	return sim.New(cfg)
}

func smallConfig() Config {
	return Config{K: 4, V: 100, DocsPerMachine: 60_000, AvgDocLen: 40, Iterations: 6, Seed: 13, SVPerMachine: 4}
}

func checkResult(t *testing.T, res *task.Result, err error, iters int) {
	t.Helper()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(res.IterSecs) != iters {
		t.Fatalf("iterations = %d, want %d", len(res.IterSecs), iters)
	}
	if res.InitSec <= 0 || res.AvgIterSec() <= 0 {
		t.Errorf("timings not positive: init=%v iter=%v", res.InitSec, res.AvgIterSec())
	}
	ll, ok := res.Metrics["loglike"]
	if !ok {
		t.Fatal("no loglike metric")
	}
	// Uniform-random joint likelihood per word is about
	// log(1/V) + log(1/K) = -6 - 1.4; a learned model on the skewed
	// corpus should be far above that.
	if ll < -6.5 {
		t.Errorf("per-word loglike = %v; model did not learn", ll)
	}
}

func TestSparkDocLearns(t *testing.T) {
	res, err := RunSpark(smallCluster(2), smallConfig(), VariantDoc)
	checkResult(t, res, err, 6)
}

func TestSparkSVLearns(t *testing.T) {
	res, err := RunSpark(smallCluster(2), smallConfig(), VariantSV)
	checkResult(t, res, err, 6)
}

func TestSparkWordSelfJoinFails(t *testing.T) {
	// Figure 3(a): the word-based Spark HMM dies in the self-join.
	c := sim.DefaultConfig(5)
	c.Scale = 100000
	cfg := Config{K: 20, V: 10000, DocsPerMachine: 2_500_000, AvgDocLen: 210, Iterations: 1, Seed: 13}
	_, err := RunSpark(sim.New(c), cfg, VariantWord)
	if !sim.IsOOM(err) {
		t.Fatalf("expected OOM from self-join, got %v", err)
	}
}

func TestSimSQLDocLearns(t *testing.T) {
	res, err := RunSimSQL(smallCluster(2), smallConfig(), VariantDoc)
	checkResult(t, res, err, 6)
}

func TestSimSQLWordLearns(t *testing.T) {
	res, err := RunSimSQL(smallCluster(2), smallConfig(), VariantWord)
	checkResult(t, res, err, 6)
}

func TestSimSQLSVLearns(t *testing.T) {
	res, err := RunSimSQL(smallCluster(2), smallConfig(), VariantSV)
	checkResult(t, res, err, 6)
}

func TestSimSQLWordSlowestDocFasterSVFastest(t *testing.T) {
	// Figure 3: word-based SimSQL is by far the slowest granularity;
	// super-vertex is the fastest.
	cfg := Config{K: 8, V: 1000, DocsPerMachine: 250_000, AvgDocLen: 100, Iterations: 1, Seed: 13}
	word, err := RunSimSQL(smallCluster(2), cfg, VariantWord)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := RunSimSQL(smallCluster(2), cfg, VariantDoc)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := RunSimSQL(smallCluster(2), cfg, VariantSV)
	if err != nil {
		t.Fatal(err)
	}
	if !(word.AvgIterSec() > doc.AvgIterSec() && doc.AvgIterSec() > sv.AvgIterSec()) {
		t.Errorf("granularity ordering wrong: word=%v doc=%v sv=%v",
			word.AvgIterSec(), doc.AvgIterSec(), sv.AvgIterSec())
	}
}

func TestArithJoinQuirkSlower(t *testing.T) {
	// Section 7.2: without the nextPos workaround the adjacency join
	// runs as a cross product and is drastically slower.
	cfg := Config{K: 4, V: 100, DocsPerMachine: 20_000, AvgDocLen: 20, Iterations: 1, Seed: 13}
	normal, err := RunSimSQL(smallCluster(1), cfg, VariantWord)
	if err != nil {
		t.Fatal(err)
	}
	cfg.UseArithJoinQuirk = true
	quirk, err := RunSimSQL(smallCluster(1), cfg, VariantWord)
	if err != nil {
		t.Fatal(err)
	}
	if quirk.AvgIterSec() < 5*normal.AvgIterSec() {
		t.Errorf("quirk plan (%v) should dwarf the equi-join plan (%v)",
			quirk.AvgIterSec(), normal.AvgIterSec())
	}
}

func TestGiraphDocLearns(t *testing.T) {
	res, err := RunGiraph(smallCluster(2), smallConfig(), VariantDoc)
	checkResult(t, res, err, 6)
}

func TestGiraphSVLearns(t *testing.T) {
	res, err := RunGiraph(smallCluster(2), smallConfig(), VariantSV)
	checkResult(t, res, err, 6)
}

func TestGiraphWordFailsOnLoad(t *testing.T) {
	// Figure 3(a): word-based Giraph cannot even load 525M word vertices
	// per machine.
	c := sim.DefaultConfig(5)
	c.Scale = 1_000_000
	cfg := Config{K: 20, V: 10000, DocsPerMachine: 2_500_000, AvgDocLen: 210, Iterations: 1, Seed: 13}
	if _, err := RunGiraph(sim.New(c), cfg, VariantWord); !sim.IsOOM(err) {
		t.Fatalf("expected load OOM, got %v", err)
	}
}

func TestGraphLabSVLearns(t *testing.T) {
	res, err := RunGraphLab(smallCluster(2), smallConfig())
	checkResult(t, res, err, 6)
}

func TestGraphLabSVFailsAtTwentyMachines(t *testing.T) {
	// Figure 3(b): GraphLab's super-vertex HMM runs at 5 machines but
	// fails at 20 and beyond.
	run := func(machines int) error {
		c := sim.DefaultConfig(machines)
		c.Scale = 100_000
		cfg := Config{K: 20, V: 10000, DocsPerMachine: 2_500_000, AvgDocLen: 210, Iterations: 1, Seed: 13, SVPerMachine: 50}
		_, err := RunGraphLab(sim.New(c), cfg)
		return err
	}
	if err := run(5); err != nil {
		t.Errorf("5 machines should run: %v", err)
	}
	if err := run(20); !sim.IsOOM(err) {
		t.Errorf("20 machines should OOM, got %v", err)
	}
}

func TestGiraphSVFastestPlatform(t *testing.T) {
	// Figure 3(b): Giraph's super-vertex HMM beats Spark and SimSQL by
	// an order of magnitude.
	cfg := Config{K: 8, V: 1000, DocsPerMachine: 250_000, AvgDocLen: 100, Iterations: 2, Seed: 13, SVPerMachine: 8}
	gir, err := RunGiraph(smallCluster(2), cfg, VariantSV)
	if err != nil {
		t.Fatal(err)
	}
	spark, err := RunSpark(smallCluster(2), cfg, VariantSV)
	if err != nil {
		t.Fatal(err)
	}
	simsql, err := RunSimSQL(smallCluster(2), cfg, VariantSV)
	if err != nil {
		t.Fatal(err)
	}
	if !(gir.AvgIterSec() < spark.AvgIterSec()/5 && gir.AvgIterSec() < simsql.AvgIterSec()/5) {
		t.Errorf("Giraph SV (%v) should be far below Spark (%v) and SimSQL (%v)",
			gir.AvgIterSec(), spark.AvgIterSec(), simsql.AvgIterSec())
	}
}
