package hmmtask

import (
	"fmt"

	"mlbench/internal/dataflow"
	"mlbench/internal/models/hmm"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
)

// sparkDoc is one document in the d_w_s_seq RDD: words plus current
// state assignments and the record-owned resampling scratch.
type sparkDoc struct {
	id     int
	words  []int
	states []int
	sc     hmm.Scratch
}

// docBytes is the simulated Python size of a document record: two Python
// lists of boxed ints plus tuple overhead.
func docBytes(words int) int64 { return int64(2*28*words) + 120 }

// RunSpark implements the paper's Section 7.1 Spark HMM.
//
// VariantWord reproduces the paper's failed attempt: the word-based
// simulation needs a self-join of the state-assignment RDD with itself
// (to pair each position with its neighbors), and "we could not get
// Spark to perform the required self-join ... without failing"; the
// reducer-side buffering of two word-cardinality inputs exhausts
// executor memory, so the function returns the OOM without implementing
// the rest.
//
// VariantDoc and VariantSV run the paper's document-based pipeline:
// per-iteration jobs aggregate the h/g/f statistics with reduceByKey,
// the driver redraws delta and Psi, and a mapValues job resamples the
// states of every document (word-at-a-time in Python — which is why
// Spark's HMM stays near four hours per iteration even as a super-vertex
// code).
func RunSpark(cl *sim.Cluster, cfg Config, variant Variant) (*task.Result, error) {
	cfg = cfg.withDefaults()
	cfg.Variant = variant
	res := &task.Result{}
	profile := sim.ProfilePython
	ctx := dataflow.NewContext(cl, profile)
	sw := task.NewStopwatch(cl)
	machines := cl.NumMachines()
	h := cfg.hyper()

	machineDocs := make([][][]int, machines)
	for mc := 0; mc < machines; mc++ {
		machineDocs[mc] = genMachineDocs(cl, cfg, mc)
	}

	if variant == VariantWord {
		return res, sparkWordBasedAttempt(ctx, cl, cfg, machineDocs)
	}

	// d_w_seq: parse documents and initialize states.
	parts := machines * cl.Config().Cores
	// finalStates[mc][i] aliases the live state slice of machine mc's
	// i-th document, so the quality diagnostic reads the chain's final
	// assignments without a charged driver collect.
	finalStates := make([][][]int, machines)
	for mc := range finalStates {
		finalStates[mc] = make([][]int, len(machineDocs[mc]))
	}
	docsRDD := dataflow.Generate(ctx, parts, func(d sparkDoc) int64 { return docBytes(len(d.words)) },
		func(p int, r *randgen.RNG) []sparkDoc {
			mc := p % machines
			all := machineDocs[mc]
			slot, cores := p/machines, cl.Config().Cores
			lo, hi := slot*len(all)/cores, (slot+1)*len(all)/cores
			out := make([]sparkDoc, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, sparkDoc{id: mc*len(all) + i, words: all[i]})
			}
			return out
		}).SetName("d_w_seq")
	state := dataflow.Map(docsRDD, func(d sparkDoc) int64 { return docBytes(len(d.words)) },
		func(m *sim.Meter, d sparkDoc) sparkDoc {
			m.ChargeTuples(len(d.words)) // init_state touches every word
			d.states = hmm.InitStates(m.RNG(), d.words, cfg.K)
			if mc, i := docHome(machineDocs, d.id); mc == 0 {
				finalStates[0][i] = d.states
			}
			return d
		}).SetName("d_w_s_seq").Cache()

	rng := randgen.New(cfg.Seed ^ 0x4a4a)
	var model *hmm.Model
	err := cl.RunDriver("hmm-init-model", func(m *sim.Meter) error {
		m.SetProfile(profile)
		m.ChargeLinalgAbs(cfg.K, float64(cfg.V), 1)
		model = hmm.Init(rng, h)
		refreshProposals(cfg, m, model)
		return nil
	})
	if err != nil {
		return res, err
	}
	// Materialize the cached initial state RDD.
	if _, err := dataflow.Count(state); err != nil {
		return res, fmt.Errorf("hmm spark: init states: %w", err)
	}
	res.InitSec = sw.Lap()

	// Count partials cross the framework as boxed Python dictionaries,
	// not packed arrays — the single-reducer aggregation of #partitions
	// of these is what sinks the 100-machine run.
	boxedCounts := int64(cfg.K*cfg.V+cfg.K*cfg.K+cfg.K) * 112
	countsSizer := func(dataflow.Pair[int, *hmm.Counts]) int64 {
		return boxedCounts
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Broadcast(modelBytes(cfg.K, cfg.V), "hmm model"); err != nil {
			return res, err
		}
		// Jobs 1+2 (h for delta) and 3+4 (f for Psi): the paper issues
		// separate count jobs; we aggregate all statistics in one
		// partition-merged pass and charge the extra job launches.
		counts := dataflow.MapPartitions(state, countsSizer,
			func(m *sim.Meter, part []sparkDoc) []dataflow.Pair[int, *hmm.Counts] {
				acc := hmm.NewCounts(cfg.K, cfg.V)
				for _, d := range part {
					if cfg.Variant == VariantSV {
						// Super-vertex counting is batched NumPy work.
						m.ChargeBulk(float64(2 * len(d.words)))
					} else {
						// comp_h / psi counting touches every word in Python.
						m.ChargeTuples(len(d.words))
					}
					acc.Accumulate(d.words, d.states, 1)
				}
				return []dataflow.Pair[int, *hmm.Counts]{{K: 0, V: acc}}
			})
		merged := dataflow.ReduceByKey(counts, func(m *sim.Meter, a, b *hmm.Counts) *hmm.Counts {
			m.ChargeLinalgAbs(1, float64(cfg.K*cfg.V), 1)
			a.Merge(b)
			return a
		}).AsModel()
		pairs, err := dataflow.CollectPairs(merged)
		if err != nil {
			return res, fmt.Errorf("hmm spark iter %d: counts: %w", iter, err)
		}
		cl.Advance(3 * cl.Config().Cost.SparkJobLaunch) // the separate h/f/g jobs
		err = cl.RunDriver("hmm-model-update", func(m *sim.Meter) error {
			m.SetProfile(profile)
			m.ChargeLinalgAbs(cfg.K, float64(cfg.V+cfg.K), 1)
			total := hmm.NewCounts(cfg.K, cfg.V)
			for _, p := range pairs {
				total.Merge(p.V)
			}
			scaleCounts(total, cl.Scale())
			model.UpdateModel(rng, h, total)
			refreshProposals(cfg, m, model)
			return nil
		})
		if err != nil {
			return res, err
		}
		// Job 5: update_state — resample the (iteration-parity) states of
		// every document, word-at-a-time in Python.
		iterCopy := iter
		next := dataflow.Map(state, func(d sparkDoc) int64 { return docBytes(len(d.words)) },
			func(m *sim.Meter, d sparkDoc) sparkDoc {
				m.ChargeTuples(len(d.words))
				m.ChargeLinalg(len(d.words)/2, hmm.StateFlopsTier(cfg.Sampler, cfg.K), 1)
				ns := append([]int{}, d.states...)
				model.ResampleStatesTier(m.RNG(), d.words, ns, iterCopy, cfg.Sampler, &d.sc)
				if mc, i := docHome(machineDocs, d.id); mc == 0 {
					finalStates[0][i] = ns
				}
				return sparkDoc{id: d.id, words: d.words, states: ns}
			}).SetName("d_w_s_seq").Cache()
		if _, err := dataflow.Count(next); err != nil {
			return res, fmt.Errorf("hmm spark iter %d: update states: %w", iter, err)
		}
		state.Unpersist()
		state = next
		ctx.ReleaseBroadcast(modelBytes(cfg.K, cfg.V))
		res.IterSecs = append(res.IterSecs, sw.Lap())
	}

	recordQuality(cl, cfg, model, finalStates[0], machineDocs[0], res)
	return res, nil
}

// scaleCounts multiplies counts to paper scale.
func scaleCounts(c *hmm.Counts, scale float64) {
	c.Start.ScaleInPlace(scale)
	for s := 0; s < c.K; s++ {
		c.Emit[s].ScaleInPlace(scale)
		c.Trans[s].ScaleInPlace(scale)
	}
}

// sparkWordBasedAttempt reproduces the failed word-based Spark HMM: keyed
// state assignments self-joined to link adjacent positions.
func sparkWordBasedAttempt(ctx *dataflow.Context, cl *sim.Cluster, cfg Config, machineDocs [][][]int) error {
	machines := cl.NumMachines()
	type posKey struct{ doc, pos int }
	wordBytes := int64(96) // a Python (key, (word, state)) tuple
	words := dataflow.Generate(ctx, machines, func(dataflow.Pair[posKey, [2]int]) int64 { return wordBytes },
		func(p int, r *randgen.RNG) []dataflow.Pair[posKey, [2]int] {
			var out []dataflow.Pair[posKey, [2]int]
			for di, doc := range machineDocs[p] {
				for pos, w := range doc {
					out = append(out, dataflow.Pair[posKey, [2]int]{
						K: posKey{doc: p*len(machineDocs[p]) + di, pos: pos},
						V: [2]int{w, r.Intn(cfg.K)},
					})
				}
			}
			return out
		}).SetName("word_states")
	shifted := dataflow.Map(words, func(dataflow.Pair[posKey, [2]int]) int64 { return wordBytes },
		func(m *sim.Meter, kv dataflow.Pair[posKey, [2]int]) dataflow.Pair[posKey, [2]int] {
			kv.K.pos++
			return kv
		})
	joined := dataflow.Join(words, shifted)
	_, err := dataflow.Count(joined)
	if err != nil {
		return fmt.Errorf("hmm spark word-based self-join: %w", err)
	}
	return nil
}

// docHome maps a global doc id back to (machine, index). Ids are assigned
// machine-major at generation.
func docHome(machineDocs [][][]int, id int) (int, int) {
	for mc, docs := range machineDocs {
		if id < len(docs) {
			return mc, id
		}
		id -= len(docs)
	}
	return -1, -1
}
