// Package hmmtask implements the paper's Section 7 benchmark task — the
// text HMM Gibbs sampler — on all five platform engines, at the three
// granularities of Figure 3: word-based (every word and hidden state is
// an element the platform manages), document-based (a document's states
// are resampled as a group in user code), and super-vertex (documents are
// blocked per machine), plus the parameter-server port of fig-ps.
package hmmtask

import (
	"mlbench/internal/datagen"
	"mlbench/internal/models/hmm"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/task"
	"mlbench/internal/workload"
)

// Variant selects the granularity of an HMM implementation.
type Variant int

const (
	// VariantWord pushes every (word, state) through the platform.
	VariantWord Variant = iota
	// VariantDoc resamples a whole document per user-code invocation.
	VariantDoc
	// VariantSV blocks many documents into one platform element.
	VariantSV
)

// String names the variant as the paper's tables do.
func (v Variant) String() string {
	switch v {
	case VariantWord:
		return "word-based"
	case VariantDoc:
		return "document-based"
	default:
		return "super-vertex"
	}
}

// Config parameterizes one HMM run at paper scale.
type Config struct {
	K              int // hidden states (paper: 20)
	V              int // dictionary size (paper: 10,000)
	DocsPerMachine int // paper: 2.5M
	AvgDocLen      int // paper: ~210
	Iterations     int
	Variant        Variant
	SVPerMachine   int // super vertices per machine (default 50)
	Seed           uint64
	// UseArithJoinQuirk makes the word-based SimSQL plan use the
	// optimizer's cross-product fallback instead of the stored-nextPos
	// equi-join (the Section 7.2 quirk; used by the ablation bench).
	UseArithJoinQuirk bool
	// Sampler selects the state hot-path tier (dense scan, per-position
	// alias, or cached Metropolis-Hastings); the default dense tier is
	// byte-identical to the historical sampler.
	Sampler randgen.SamplerTier
	// Dataset names a datagen scenario reshaping the corpus (word/topic
	// skew, doc-length law, partition imbalance); empty is the historical
	// paper-shape generator, byte-identical to before the knob existed.
	// Validated upstream (RunSpec.Validate / datagen.ParseScenario).
	Dataset string
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 20
	}
	if c.V == 0 {
		c.V = 10_000
	}
	if c.DocsPerMachine == 0 {
		c.DocsPerMachine = 2_500_000
	}
	if c.AvgDocLen == 0 {
		c.AvgDocLen = 210
	}
	if c.Iterations == 0 {
		c.Iterations = 3
	}
	if c.SVPerMachine == 0 {
		c.SVPerMachine = 50
	}
	if c.Seed == 0 {
		c.Seed = 31
	}
	return c
}

// hyper returns the model hyperparameters.
func (c Config) hyper() hmm.Hyper { return hmm.Hyper{K: c.K, V: c.V, Alpha: 1, Beta: 0.5} }

// genMachineDocs deterministically generates one machine's documents. A
// Dataset scenario reshapes the corpus (and this machine's share of it)
// while keeping the task's dimensions; the empty scenario is the
// historical generator, byte-identical.
func genMachineDocs(cl *sim.Cluster, cfg Config, machine int) [][]int {
	ds := datagen.ScenarioSpec(cfg.Dataset)
	n := datagen.MachineShare(ds, machine, cl.NumMachines(), task.RealCount(cl, cfg.DocsPerMachine))
	rng := randgen.New(cfg.Seed ^ cl.Config().Seed).Split(uint64(machine))
	topics := cfg.K / 4
	if topics < 2 {
		topics = 2
	}
	if ds != nil && ds.Corpus != nil {
		return datagen.MachineCorpus(ds, rng, n, cfg.V, cfg.AvgDocLen, topics)
	}
	return workload.GenCorpus(rng, workload.CorpusConfig{
		Docs: n, Vocab: cfg.V, AvgLen: cfg.AvgDocLen, Topics: topics,
		Sampler: cfg.Sampler,
	})
}

// refreshProposals rebuilds model's mhalias proposal cache (a no-op for
// the other tiers). Every call site is a serial point — engine setup,
// driver update sections, parameter-server snapshot clones — because the
// cache is shared read-only by the concurrent resampling. A nil meter
// skips cost accounting (pre-clock setup).
func refreshProposals(cfg Config, m *sim.Meter, model *hmm.Model) {
	if cfg.Sampler != randgen.TierMHAlias {
		return
	}
	if m != nil {
		m.ChargeBulkAbs(hmm.StateProposalFlops(cfg.K, cfg.V))
	}
	model.RefreshProposals()
}

// wordsIn counts the words of a document set.
func wordsIn(docs [][]int) int {
	n := 0
	for _, d := range docs {
		n += len(d)
	}
	return n
}

// countsViewBytes is the simulated size of one exported set of f/g/h
// count statistics: roughly 48 bytes per (id, value) hash-map entry in a
// C++/Java struct — the paper's "around 10MB of data" per super vertex
// for K=20, V=10,000.
func countsViewBytes(k, v int) int64 { return int64(48 * (k*v + k*k + k)) }

// modelBytes is the wire size of the HMM model (Psi, delta, delta0).
func modelBytes(k, v int) int64 { return int64(8 * (k*v + k*k + k)) }

// recordQuality stores the final joint log-likelihood per word over
// machine 0's documents with freshly drawn states (diagnostic only).
func recordQuality(cl *sim.Cluster, cfg Config, m *hmm.Model, states [][]int, docs [][]int, res *task.Result) {
	var ll float64
	words := 0
	for i, doc := range docs {
		ll += m.LogLikelihood(doc, states[i])
		words += len(doc)
	}
	if words > 0 {
		res.SetMetric("loglike", ll/float64(words))
	}
}
