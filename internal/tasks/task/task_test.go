package task

import (
	"testing"

	"mlbench/internal/sim"
)

func TestAvgIterSec(t *testing.T) {
	r := &Result{}
	if r.AvgIterSec() != 0 {
		t.Error("empty result should average to 0")
	}
	r.IterSecs = []float64{10, 20, 30}
	if got := r.AvgIterSec(); got != 20 {
		t.Errorf("AvgIterSec = %v, want 20", got)
	}
}

func TestSetMetricAndNote(t *testing.T) {
	r := &Result{}
	r.SetMetric("x", 1.5)
	r.SetMetric("x", 2.5)
	if r.Metrics["x"] != 2.5 {
		t.Errorf("metric = %v", r.Metrics["x"])
	}
	r.Note("hello %d", 7)
	if len(r.Notes) != 1 || r.Notes[0] != "hello 7" {
		t.Errorf("notes = %v", r.Notes)
	}
}

func TestStopwatchLaps(t *testing.T) {
	c := sim.New(sim.DefaultConfig(1))
	sw := NewStopwatch(c)
	c.Advance(5)
	if got := sw.Lap(); got != 5 {
		t.Errorf("lap 1 = %v", got)
	}
	c.Advance(3)
	if got := sw.Lap(); got != 3 {
		t.Errorf("lap 2 = %v", got)
	}
}

func TestRealCount(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.Scale = 1000
	c := sim.New(cfg)
	if got := RealCount(c, 5000); got != 5 {
		t.Errorf("RealCount = %d, want 5", got)
	}
	if got := RealCount(c, 10); got != 1 {
		t.Errorf("RealCount should floor at 1, got %d", got)
	}
}
