// Package task provides the shared scaffolding of the per-platform
// benchmark implementations: result bookkeeping against the virtual
// clock, and data-distribution helpers.
package task

import (
	"fmt"

	"mlbench/internal/sim"
)

// Result reports one task run: initialization time, per-iteration times
// (all in virtual seconds at paper scale), free-form notes (e.g. the
// GraphLab boot clamp), model-quality diagnostics, and the per-iteration
// quality chain used by cross-engine equivalence tests.
type Result struct {
	InitSec  float64
	IterSecs []float64
	Notes    []string
	Metrics  map[string]float64
	// Chain holds one scalar model-quality statistic per iteration (e.g.
	// the GMM average log-likelihood, the Lasso beta error). With matched
	// data seeds, the same statistic is comparable across the four
	// platform implementations of a model — see internal/models/diag.
	Chain []float64
}

// Record appends one per-iteration quality statistic to the chain.
func (r *Result) Record(v float64) { r.Chain = append(r.Chain, v) }

// AvgIterSec returns the mean per-iteration time, the quantity the
// paper's tables report.
func (r *Result) AvgIterSec() float64 {
	if len(r.IterSecs) == 0 {
		return 0
	}
	var s float64
	for _, t := range r.IterSecs {
		s += t
	}
	return s / float64(len(r.IterSecs))
}

// SetMetric records a named diagnostic.
func (r *Result) SetMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// Note appends a formatted note.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Stopwatch measures virtual-clock intervals on a cluster.
type Stopwatch struct {
	c    *sim.Cluster
	last float64
}

// NewStopwatch starts timing from the cluster's current virtual time.
func NewStopwatch(c *sim.Cluster) *Stopwatch {
	return &Stopwatch{c: c, last: c.Now()}
}

// Lap returns the virtual seconds since the previous Lap (or creation)
// and resets the mark.
func (s *Stopwatch) Lap() float64 {
	now := s.c.Now()
	d := now - s.last
	s.last = now
	return d
}

// RealCount converts a paper-scale per-machine element count into the
// number of real in-memory elements (at least 1).
func RealCount(c *sim.Cluster, paperPerMachine int) int {
	n := int(float64(paperPerMachine) / c.Scale())
	if n < 1 {
		n = 1
	}
	return n
}
