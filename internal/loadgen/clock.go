// Package loadgen replays a traffic profile (core.Profile) against a live
// mlbenchd at a configurable time-compression factor and records a
// per-bucket serving timeline — issued/completed counts, status classes,
// latency percentiles, and the queue/worker/cache gauges scraped from
// /v1/metrics — plus SLO verdicts. The driver is single-threaded and
// clock-injected: under a FakeClock against the deterministic FakeServer
// the same profile produces byte-identical CSV and summary output, which
// is what lets the serving-SLO battery run as ordinary unit tests in
// milliseconds. See `mlbench load` for the CLI.
package loadgen

import (
	"sync"
	"time"
)

// Clock abstracts wall time so the driver replays profiles in real time
// in production and instantly in tests.
type Clock interface {
	Now() time.Time
	// Sleep blocks until d has elapsed (or returns immediately on a fake
	// clock, advancing virtual time).
	Sleep(d time.Duration)
}

// WallClock is the real time.Now/time.Sleep clock.
type WallClock struct{}

func (WallClock) Now() time.Time        { return time.Now() }
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock is a deterministic clock: Sleep advances Now instantly. It is
// mutex-guarded so server-side goroutines may read Now concurrently with
// the driver sleeping, but the driver is the only writer — time moves
// only when the single-threaded replay loop sleeps, which is what makes
// replays reproducible.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
