package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"mlbench/internal/core"
)

// Bucket is one timeline row: every request is attributed to the bucket
// of its first issue, so a bucket's counters answer "what happened to the
// traffic that arrived here" (completions of earlier arrivals never bleed
// forward). Gauges are the last /v1/metrics scrape inside the bucket.
type Bucket struct {
	Index    int     `json:"bucket"`
	StartSec float64 `json:"start_sec"`

	Issued      int `json:"issued"`
	Completed   int `json:"completed"`
	Failed      int `json:"failed"`
	Rejected429 int `json:"rejected_429"`
	Unavail503  int `json:"unavail_503"`
	Errors      int `json:"errors"`
	Retries     int `json:"retries"`
	CacheHits   int `json:"cache_hits"`

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`

	QueueDepth   int     `json:"queue_depth"`
	Workers      int     `json:"workers"`
	WorkersBusy  int     `json:"workers_busy"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	Events []string `json:"events,omitempty"`

	latencies []float64 // wall ms of completed requests issued here
}

// finish computes the bucket's latency percentiles.
func (b *Bucket) finish() {
	b.P50Ms = percentile(b.latencies, 50)
	b.P95Ms = percentile(b.latencies, 95)
	b.P99Ms = percentile(b.latencies, 99)
}

// percentile is the nearest-rank percentile of an unsorted sample (0 when
// empty) — the deterministic textbook definition, no interpolation.
func percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// csvHeader is the stable timeline schema; tests and downstream tooling
// parse these names — extend, never rename.
const csvHeader = "bucket,start_sec,issued,completed,failed,rejected_429,unavail_503,errors,retries,cache_hits,p50_ms,p95_ms,p99_ms,queue_depth,workers,workers_busy,cache_hit_rate,events"

// WriteCSV renders the timeline byte-stably: fixed decimal places for
// measurements, events joined with ';'.
func WriteCSV(w io.Writer, buckets []Bucket) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, b := range buckets {
		row := strings.Join([]string{
			strconv.Itoa(b.Index),
			strconv.FormatFloat(b.StartSec, 'f', -1, 64),
			strconv.Itoa(b.Issued),
			strconv.Itoa(b.Completed),
			strconv.Itoa(b.Failed),
			strconv.Itoa(b.Rejected429),
			strconv.Itoa(b.Unavail503),
			strconv.Itoa(b.Errors),
			strconv.Itoa(b.Retries),
			strconv.Itoa(b.CacheHits),
			strconv.FormatFloat(b.P50Ms, 'f', 3, 64),
			strconv.FormatFloat(b.P95Ms, 'f', 3, 64),
			strconv.FormatFloat(b.P99Ms, 'f', 3, 64),
			strconv.Itoa(b.QueueDepth),
			strconv.Itoa(b.Workers),
			strconv.Itoa(b.WorkersBusy),
			strconv.FormatFloat(b.CacheHitRate, 'f', 4, 64),
			strings.Join(b.Events, ";"),
		}, ",")
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// Verdict is one SLO check of the replay summary.
type Verdict struct {
	Name   string  `json:"name"`
	Limit  float64 `json:"limit"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

// Summary is the replay's aggregate result and SLO verdicts
// (JSON-serialized by WriteSummary).
type Summary struct {
	Profile     string  `json:"profile"`
	Compression float64 `json:"compression"`
	DurationSec float64 `json:"duration_sec"`

	Issued         int `json:"issued"`
	Completed      int `json:"completed"`
	Failed         int `json:"failed"`
	Rejected429    int `json:"rejected_429"`
	Unavail503     int `json:"unavail_503"`
	Errors         int `json:"errors"`
	Retries        int `json:"retries"`
	RetrySucceeded int `json:"retry_succeeded"`
	CacheHits      int `json:"cache_hits"`

	// P50/P95/P99 are wall milliseconds over every completed request;
	// RetryPenaltyMs is the summed extra wait of requests that needed a
	// retry (last issue minus first issue), kept out of the percentiles so
	// backpressure shows up as its own line.
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	RetryPenaltyMs float64 `json:"retry_penalty_ms"`

	CacheHitRate  float64 `json:"cache_hit_rate"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	MinWorkers    int     `json:"min_workers"`
	MaxWorkers    int     `json:"max_workers"`
	ScaleUps      int     `json:"scale_ups"`
	ScaleDowns    int     `json:"scale_downs"`

	Verdicts []Verdict `json:"verdicts"`
	Pass     bool      `json:"pass"`
}

// WriteSummary renders the summary as stable indented JSON.
func WriteSummary(w io.Writer, s *Summary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(data))
	return err
}

// EvaluateSLO fills the summary's verdicts from the profile's SLO and
// returns overall pass. A nil SLO passes vacuously with no verdicts.
// Rates are fractions of total attempts (issued + retries).
func EvaluateSLO(slo *core.SLO, s *Summary) bool {
	s.Verdicts = []Verdict{}
	s.Pass = true
	if slo == nil {
		return true
	}
	attempts := float64(s.Issued + s.Retries)
	rate := func(n int) float64 {
		if attempts == 0 {
			return 0
		}
		return float64(n) / attempts
	}
	add := func(name string, limit, actual float64, pass bool) {
		s.Verdicts = append(s.Verdicts, Verdict{Name: name, Limit: limit, Actual: actual, Pass: pass})
		s.Pass = s.Pass && pass
	}
	if v := slo.MaxP50Ms; v != nil {
		add("max_p50_ms", *v, s.P50Ms, s.P50Ms <= *v)
	}
	if v := slo.MaxP99Ms; v != nil {
		add("max_p99_ms", *v, s.P99Ms, s.P99Ms <= *v)
	}
	if v := slo.Max429Rate; v != nil {
		add("max_429_rate", *v, rate(s.Rejected429), rate(s.Rejected429) <= *v)
	}
	if v := slo.Max503Rate; v != nil {
		add("max_503_rate", *v, rate(s.Unavail503), rate(s.Unavail503) <= *v)
	}
	if v := slo.MaxErrorRate; v != nil {
		add("max_error_rate", *v, rate(s.Errors), rate(s.Errors) <= *v)
	}
	if v := slo.MinCacheHitRate; v != nil {
		add("min_cache_hit_rate", *v, s.CacheHitRate, s.CacheHitRate >= *v)
	}
	if v := slo.MinCompleted; v != nil {
		add("min_completed", float64(*v), float64(s.Completed), s.Completed >= *v)
	}
	return s.Pass
}
