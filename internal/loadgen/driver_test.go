package loadgen

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mlbench/internal/serve"
)

var update = flag.Bool("update", false, "rewrite the loadgen golden files")

// goldenReplay runs the checked-in example profile once on a fresh fake
// clock + fake autoscaling server and returns the result plus the
// rendered CSV and summary bytes.
func goldenReplay(t *testing.T) (*Result, []byte, []byte) {
	return replayProfile(t, "ramp-burst-drain")
}

// replayProfile replays one checked-in profile on a fresh fake clock +
// fake autoscaling server (the same server model for every profile, so
// golden files differ only by the traffic) and returns the result plus
// the rendered CSV and summary bytes.
func replayProfile(t *testing.T, name string) (*Result, []byte, []byte) {
	t.Helper()
	p, err := LoadProfile(filepath.Join("..", "..", "profiles", name+".yaml"))
	if err != nil {
		t.Fatal(err)
	}
	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	fs := NewFakeServer(clock, FakeServerConfig{
		QueueDepth:    10,
		RetryAfterSec: 1,
		ServiceTime:   10 * time.Millisecond, // 1 profile second at 100x
		Autoscale: &serve.AutoscaleConfig{
			Min: 1, Max: 6,
			Interval: 100 * time.Millisecond, // 10 profile seconds
			Cooldown: 200 * time.Millisecond,
		},
	})
	res, err := Run(p, Options{
		BaseURL: "http://fake",
		Client:  HandlerClient(fs.Handler()),
		Clock:   clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	var csv, sum bytes.Buffer
	if err := WriteCSV(&csv, res.Buckets); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummary(&sum, &res.Summary); err != nil {
		t.Fatal(err)
	}
	return res, csv.Bytes(), sum.Bytes()
}

// TestGoldenRampBurstDrain is the acceptance e2e: the example profile at
// 100x compression on the fake clock produces a byte-stable timeline
// whose p99 latency, 429 rate, autoscaler worker trace, and per-bucket
// request counts are pinned by golden files.
func TestGoldenRampBurstDrain(t *testing.T) {
	res, csv, sum := goldenReplay(t)

	// Byte-stable: a second fresh replay renders the identical files.
	_, csv2, sum2 := goldenReplay(t)
	if !bytes.Equal(csv, csv2) {
		t.Fatalf("timeline CSV differs between two identical replays:\n--- first\n%s\n--- second\n%s", csv, csv2)
	}
	if !bytes.Equal(sum, sum2) {
		t.Fatalf("summary differs between two identical replays:\n--- first\n%s\n--- second\n%s", sum, sum2)
	}

	csvGolden := filepath.Join("testdata", "ramp-burst-drain.csv")
	sumGolden := filepath.Join("testdata", "ramp-burst-drain.summary.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvGolden, csv, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sumGolden, sum, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantCSV, err := os.ReadFile(csvGolden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	wantSum, err := os.ReadFile(sumGolden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("timeline CSV drifted from golden (run with -update if intended):\n--- got\n%s\n--- want\n%s", csv, wantCSV)
	}
	if !bytes.Equal(sum, wantSum) {
		t.Errorf("summary drifted from golden (run with -update if intended):\n--- got\n%s\n--- want\n%s", sum, wantSum)
	}

	// Zero dropped rows: the timeline covers every bucket of the replay
	// window (150s of phases + 30s grace at 10s buckets).
	if len(res.Buckets) != 18 {
		t.Fatalf("bucket rows = %d, want 18", len(res.Buckets))
	}
	for i, b := range res.Buckets {
		if b.Index != i {
			t.Fatalf("bucket %d has index %d (dropped row?)", i, b.Index)
		}
	}

	// Deterministic per-bucket request counts: every scheduled arrival is
	// issued exactly once, in its own bucket.
	p, err := LoadProfile(filepath.Join("..", "..", "profiles", "ramp-burst-drain.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	wantPerBucket := make([]int, len(res.Buckets))
	arrivals := Schedule(p)
	for _, a := range arrivals {
		wantPerBucket[int(a.AtSec/p.BucketSec)]++
	}
	for i, b := range res.Buckets {
		if b.Issued != wantPerBucket[i] {
			t.Errorf("bucket %d issued = %d, want %d", i, b.Issued, wantPerBucket[i])
		}
	}
	if res.Summary.Issued != len(arrivals) {
		t.Fatalf("issued = %d, want the full schedule %d", res.Summary.Issued, len(arrivals))
	}

	// The battery's behavioral spine: the bursts trip backpressure, the
	// drain event produces a 503 tail, the cache serves the hot template,
	// the autoscaler grows the pool, and the SLO passes.
	s := res.Summary
	if s.Rejected429 == 0 {
		t.Error("bursts produced no 429s")
	}
	if s.Unavail503 == 0 {
		t.Error("drain event produced no 503 tail")
	}
	if s.CacheHits == 0 {
		t.Error("hot template produced no cache hits")
	}
	if s.P99Ms <= 0 || s.P99Ms < s.P50Ms {
		t.Errorf("implausible latency percentiles: p50 %.3f p99 %.3f", s.P50Ms, s.P99Ms)
	}
	if s.ScaleUps == 0 {
		t.Error("autoscaler never scaled up under the ramp")
	}
	if s.MaxWorkers <= s.MinWorkers {
		t.Errorf("worker trace flat: min %d max %d", s.MinWorkers, s.MaxWorkers)
	}
	if !s.Pass {
		t.Errorf("SLO verdicts failed: %+v", s.Verdicts)
	}

	// The worker-count trace is visible per bucket and reaches the
	// summary's max during the load plateau.
	var maxWorkers int
	for _, b := range res.Buckets {
		if b.Workers > maxWorkers {
			maxWorkers = b.Workers
		}
	}
	if maxWorkers != s.MaxWorkers {
		t.Errorf("bucket worker trace max %d != summary max %d", maxWorkers, s.MaxWorkers)
	}
}

// TestGoldenSkewScenarioMix replays profiles/skew.yaml — the same LDA
// figure under the paper corpus shape and the skew-light/skew-heavy
// datagen scenarios, plus unique-seed imbalance runs — and pins the
// timeline with golden files. The load-bearing property: the `dataset`
// field is part of the run's cache key, so the three fixed templates
// land on three distinct cache entries instead of collapsing into one
// coalesced job.
func TestGoldenSkewScenarioMix(t *testing.T) {
	res, csv, sum := replayProfile(t, "skew")

	// Byte-stable: a second fresh replay renders the identical files.
	_, csv2, sum2 := replayProfile(t, "skew")
	if !bytes.Equal(csv, csv2) {
		t.Fatalf("timeline CSV differs between two identical replays:\n--- first\n%s\n--- second\n%s", csv, csv2)
	}
	if !bytes.Equal(sum, sum2) {
		t.Fatalf("summary differs between two identical replays:\n--- first\n%s\n--- second\n%s", sum, sum2)
	}

	csvGolden := filepath.Join("testdata", "skew.csv")
	sumGolden := filepath.Join("testdata", "skew.summary.json")
	if *update {
		if err := os.WriteFile(csvGolden, csv, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sumGolden, sum, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantCSV, err := os.ReadFile(csvGolden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	wantSum, err := os.ReadFile(sumGolden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("timeline CSV drifted from golden (run with -update if intended):\n--- got\n%s\n--- want\n%s", csv, wantCSV)
	}
	if !bytes.Equal(sum, wantSum) {
		t.Errorf("summary drifted from golden (run with -update if intended):\n--- got\n%s\n--- want\n%s", sum, wantSum)
	}

	// Every template spec maps to its own cache key: the dataset scenario
	// must separate otherwise-identical specs (paper vs skew-light vs
	// skew-heavy differ only in the dataset field).
	p, err := LoadProfile(filepath.Join("..", "..", "profiles", "skew.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]string{}
	for _, tpl := range p.Templates {
		k := tpl.Spec.Normalize().CacheKey()
		if prev, dup := keys[k]; dup {
			t.Errorf("templates %q and %q share cache key %s (dataset not keyed?)", prev, tpl.Name, k)
		}
		keys[k] = tpl.Name
	}

	// Behavioral spine: the fixed templates repeat into cache hits, the
	// unique-seed imbalance stream keeps fresh work arriving, and every
	// SLO verdict (p99, zero errors, zero 503s, completion floor) passes.
	s := res.Summary
	if s.CacheHits == 0 {
		t.Error("fixed scenario templates produced no cache hits")
	}
	if s.Errors != 0 {
		t.Errorf("scenario specs were rejected by the server: %d errors", s.Errors)
	}
	if !s.Pass {
		t.Errorf("SLO verdicts failed: %+v", s.Verdicts)
	}
}
