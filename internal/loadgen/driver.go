package loadgen

import (
	"bytes"
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"mlbench/internal/core"
	"mlbench/internal/serve"
)

// Options wires a replay to a server and a clock.
type Options struct {
	// BaseURL is the mlbenchd root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Client performs the HTTP requests (default http.DefaultClient; see
	// HandlerClient for the in-process test transport).
	Client *http.Client
	// Clock drives the replay (default WallClock; tests inject FakeClock).
	Clock Clock
	// Compression overrides the profile's time-compression factor (0 =
	// use the profile's).
	Compression float64
	// Seed overrides the profile's schedule seed (0 = use the profile's).
	Seed uint64
	// PollIntervalSec is the completion/metrics poll cadence in profile
	// seconds (0 = bucket_sec/4, which guarantees every bucket at least
	// one gauge scrape).
	PollIntervalSec float64
	// DisableRetry stops the driver from honoring Retry-After on 429.
	DisableRetry bool
	// MaxAttempts bounds attempts per request including the first
	// (default 3).
	MaxAttempts int
	// Log, when non-nil, narrates the replay.
	Log func(format string, args ...any)
}

// Result is a finished replay: the per-bucket timeline and the aggregate
// summary with SLO verdicts.
type Result struct {
	Buckets []Bucket
	Summary Summary
}

// Action kinds, in tie-break order within one instant.
const (
	kindArrive = iota
	kindRetry
	kindEvent
	kindPoll
	kindEnd
)

// action is one heap entry of the replay's discrete-event loop.
type action struct {
	at   float64 // virtual (profile) seconds from replay start
	seq  int     // FIFO tie-break within an instant
	kind int
	req  *request
	ev   core.ScheduledEvent
}

type actionHeap []*action

func (h actionHeap) Len() int { return len(h) }
func (h actionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h actionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *actionHeap) Push(x any)   { *h = append(*h, x.(*action)) }
func (h *actionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// request is one profile arrival's lifecycle across attempts.
type request struct {
	spec       core.RunSpec
	bucket     int // issue bucket: latency/completion attribution
	attempts   int
	firstIssue time.Time
	lastIssue  time.Time
	done       bool
}

// driver holds the single-goroutine replay state. Nothing here is
// concurrent: all HTTP calls are synchronous and time moves only in
// sleepUntil, which is what makes a FakeClock replay fully deterministic.
type driver struct {
	p      core.Profile
	opts   Options
	clock  Clock
	client *http.Client
	comp   float64
	start  time.Time
	end    float64 // virtual end: total duration + grace

	h   actionHeap
	seq int

	buckets []Bucket
	pending map[string][]*request

	firstScraped             bool
	firstHits, firstMisses   int64
	lastHits, lastMisses     int64
	bucketHits, bucketMisses int64 // scrape deltas within the current gauge bucket
	gaugeBucket              int

	sum       Summary
	penaltyMs float64
}

// Run replays the profile against the server and returns the timeline
// and summary. The profile is normalized and validated first; the server
// must be reachable (the initial /v1/metrics scrape is the health check).
func Run(p core.Profile, opts Options) (*Result, error) {
	p = p.Normalize()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: Options.BaseURL is required")
	}
	if opts.Compression > 0 {
		p.Compression = opts.Compression
	}
	if opts.Seed != 0 {
		p.Seed = opts.Seed
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.PollIntervalSec <= 0 {
		opts.PollIntervalSec = p.BucketSec / 4
	}
	d := &driver{
		p:       p,
		opts:    opts,
		clock:   opts.Clock,
		client:  opts.Client,
		comp:    p.Compression,
		end:     p.TotalDurationSec() + p.GraceSec,
		pending: map[string][]*request{},
	}
	if d.clock == nil {
		d.clock = WallClock{}
	}
	if d.client == nil {
		d.client = http.DefaultClient
	}
	nb := int(math.Ceil(d.end / p.BucketSec))
	if nb < 1 {
		nb = 1
	}
	d.buckets = make([]Bucket, nb)
	for i := range d.buckets {
		d.buckets[i] = Bucket{Index: i, StartSec: float64(i) * p.BucketSec, Events: []string{}}
	}
	return d.run()
}

func (d *driver) logf(format string, args ...any) {
	if d.opts.Log != nil {
		d.opts.Log(format, args...)
	}
}

// bucketOf maps a virtual offset to its timeline row (clamped).
func (d *driver) bucketOf(virtSec float64) *Bucket {
	i := int(virtSec / d.p.BucketSec)
	if i < 0 {
		i = 0
	}
	if i >= len(d.buckets) {
		i = len(d.buckets) - 1
	}
	return &d.buckets[i]
}

// vnow is the current virtual offset in profile seconds.
func (d *driver) vnow() float64 {
	return d.clock.Now().Sub(d.start).Seconds() * d.comp
}

// sleepUntil blocks (real or fake) until the virtual offset is reached.
func (d *driver) sleepUntil(virtSec float64) {
	target := d.start.Add(time.Duration(virtSec / d.comp * float64(time.Second)))
	if delta := target.Sub(d.clock.Now()); delta > 0 {
		d.clock.Sleep(delta)
	}
}

func (d *driver) push(a *action) {
	a.seq = d.seq
	d.seq++
	heap.Push(&d.h, a)
}

func (d *driver) run() (*Result, error) {
	// The initial scrape doubles as the connectivity check and anchors the
	// cache-hit-rate deltas.
	m, err := d.scrapeMetrics()
	if err != nil {
		return nil, fmt.Errorf("loadgen: initial scrape of %s: %w", d.opts.BaseURL, err)
	}
	d.firstScraped = true
	d.firstHits, d.firstMisses = m.CacheHits, m.CacheMisses
	d.lastHits, d.lastMisses = m.CacheHits, m.CacheMisses
	d.sum.MinWorkers, d.sum.MaxWorkers = m.Workers, m.Workers

	arrivals := Schedule(d.p)
	d.logf("loadgen: replaying %s: %d arrivals over %.0fs profile time at %gx (%.1fs wall)",
		d.p.Name, len(arrivals), d.p.TotalDurationSec(), d.comp, d.end/d.comp)
	d.start = d.clock.Now()
	for i := range arrivals {
		a := arrivals[i]
		spec := d.p.Templates[a.Template].Spec
		if a.Seed != 0 {
			spec.Seed = a.Seed
		}
		d.push(&action{at: a.AtSec, kind: kindArrive, req: &request{
			spec:   spec,
			bucket: int(a.AtSec / d.p.BucketSec),
		}})
	}
	for _, ev := range d.p.Events {
		d.push(&action{at: ev.AtSec, kind: kindEvent, ev: ev})
	}
	d.push(&action{at: d.opts.PollIntervalSec, kind: kindPoll})
	d.push(&action{at: d.end, kind: kindEnd})

	for d.h.Len() > 0 {
		a := heap.Pop(&d.h).(*action)
		if a.at > d.end {
			continue // e.g. a Retry-After landing past the replay window
		}
		d.sleepUntil(a.at)
		switch a.kind {
		case kindArrive, kindRetry:
			d.issue(a.req)
		case kindEvent:
			d.fireEvent(a.ev)
		case kindPoll:
			d.pollOnce()
			if next := a.at + d.opts.PollIntervalSec; next < d.end {
				d.push(&action{at: next, kind: kindPoll})
			}
		case kindEnd:
			d.pollOnce()
			d.foldScaleEvents()
			return d.finish(), nil
		}
	}
	return nil, fmt.Errorf("loadgen: replay ended without reaching the end marker")
}

// issue performs one POST /v1/runs attempt for the request.
func (d *driver) issue(r *request) {
	now := d.clock.Now()
	cur := d.bucketOf(d.vnow())
	r.attempts++
	if r.attempts == 1 {
		r.firstIssue = now
		cur.Issued++
	} else {
		cur.Retries++
	}
	r.lastIssue = now

	body, err := json.Marshal(r.spec)
	if err != nil {
		cur.Errors++
		return
	}
	resp, err := d.client.Post(d.opts.BaseURL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		cur.Errors++
		d.logf("loadgen: submit: %v", err)
		return
	}
	var sub struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		if derr != nil || sub.ID == "" {
			cur.Errors++
			return
		}
		if sub.Cached {
			d.complete(r, true)
			return
		}
		d.pending[sub.ID] = append(d.pending[sub.ID], r)
	case resp.StatusCode == http.StatusTooManyRequests:
		cur.Rejected429++
		if d.opts.DisableRetry || r.attempts >= d.opts.MaxAttempts {
			return
		}
		// Retry-After is wall seconds: honoring it means waiting that long
		// on the wall clock, i.e. RA*compression profile seconds.
		ra := 1.0
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v >= 0 {
			ra = float64(v)
		}
		d.push(&action{at: d.vnow() + ra*d.comp, kind: kindRetry, req: r})
	case resp.StatusCode == http.StatusServiceUnavailable:
		cur.Unavail503++
	default:
		cur.Errors++
		d.logf("loadgen: submit: HTTP %d %s", resp.StatusCode, sub.Error)
	}
}

// complete records a finished request in its issue bucket: the latency is
// the last attempt's wall time, while the wait added by earlier rejected
// attempts is accounted as retry penalty so backpressure cost stays
// visible instead of blurring the percentiles.
func (d *driver) complete(r *request, cached bool) {
	if r.done {
		return
	}
	r.done = true
	b := &d.buckets[min(r.bucket, len(d.buckets)-1)]
	b.Completed++
	if cached {
		b.CacheHits++
	}
	b.latencies = append(b.latencies, d.clock.Now().Sub(r.lastIssue).Seconds()*1000)
	if r.attempts > 1 {
		d.sum.RetrySucceeded++
		d.penaltyMs += r.lastIssue.Sub(r.firstIssue).Seconds() * 1000
	}
}

// fireEvent performs a scheduled event and annotates the timeline.
func (d *driver) fireEvent(ev core.ScheduledEvent) {
	b := d.bucketOf(ev.AtSec)
	b.Events = append(b.Events, ev.Label)
	var err error
	switch ev.Action {
	case core.EventCacheFlush:
		err = d.post("/v1/cache/flush")
	case core.EventDrain:
		err = d.post("/v1/drain")
	case core.EventMark:
	}
	if err != nil {
		d.logf("loadgen: event %s: %v", ev.Label, err)
	}
	d.logf("loadgen: event %s at %.0fs", ev.Label, ev.AtSec)
}

func (d *driver) post(path string) error {
	resp, err := d.client.Post(d.opts.BaseURL+path, "application/json", nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// pollOnce scrapes the gauges and sweeps pending runs for completions.
func (d *driver) pollOnce() {
	if m, err := d.scrapeMetrics(); err == nil {
		d.recordGauges(m)
	} else {
		d.logf("loadgen: metrics scrape: %v", err)
	}
	d.sweepRuns()
}

func (d *driver) scrapeMetrics() (*serve.Metrics, error) {
	resp, err := d.client.Get(d.opts.BaseURL + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// recordGauges folds one metrics scrape into the bucket covering the
// current virtual offset. The cache hit rate is computed from hit/miss
// deltas accumulated while the gauge cursor sits in the bucket.
func (d *driver) recordGauges(m *serve.Metrics) {
	b := d.bucketOf(d.vnow())
	if b.Index != d.gaugeBucket {
		d.bucketHits, d.bucketMisses = 0, 0
		d.gaugeBucket = b.Index
	}
	d.bucketHits += m.CacheHits - d.lastHits
	d.bucketMisses += m.CacheMisses - d.lastMisses
	d.lastHits, d.lastMisses = m.CacheHits, m.CacheMisses
	b.QueueDepth = m.QueueDepth
	b.Workers = m.Workers
	b.WorkersBusy = m.WorkersBusy
	if tot := d.bucketHits + d.bucketMisses; tot > 0 {
		b.CacheHitRate = float64(d.bucketHits) / float64(tot)
	}
	if m.QueueDepth > d.sum.MaxQueueDepth {
		d.sum.MaxQueueDepth = m.QueueDepth
	}
	if m.Workers < d.sum.MinWorkers {
		d.sum.MinWorkers = m.Workers
	}
	if m.Workers > d.sum.MaxWorkers {
		d.sum.MaxWorkers = m.Workers
	}
	d.sum.ScaleUps = int(m.ScaleUps)
	d.sum.ScaleDowns = int(m.ScaleDowns)
}

// sweepRuns lists the server's runs and completes every pending request
// whose job reached a terminal state.
func (d *driver) sweepRuns() {
	if len(d.pending) == 0 {
		return
	}
	resp, err := d.client.Get(d.opts.BaseURL + "/v1/runs")
	if err != nil {
		d.logf("loadgen: list runs: %v", err)
		return
	}
	var list struct {
		Runs []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"runs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		d.logf("loadgen: list runs: %v", err)
		return
	}
	for _, run := range list.Runs {
		reqs, ok := d.pending[run.ID]
		if !ok {
			continue
		}
		switch run.State {
		case "done":
			for _, r := range reqs {
				d.complete(r, false)
			}
		case "failed", "canceled":
			for _, r := range reqs {
				if !r.done {
					r.done = true
					d.buckets[min(r.bucket, len(d.buckets)-1)].Failed++
				}
			}
		default:
			continue // still queued/running
		}
		delete(d.pending, run.ID)
	}
}

// foldScaleEvents annotates the timeline with the server's applied
// scaling decisions (GET /v1/autoscaler), mapped from wall timestamps
// back to virtual offsets.
func (d *driver) foldScaleEvents() {
	resp, err := d.client.Get(d.opts.BaseURL + "/v1/autoscaler")
	if err != nil {
		d.logf("loadgen: autoscaler: %v", err)
		return
	}
	var as struct {
		Enabled bool               `json:"enabled"`
		Events  []serve.ScaleEvent `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&as)
	resp.Body.Close()
	if err != nil || !as.Enabled {
		return
	}
	for _, ev := range as.Events {
		virt := ev.At.Sub(d.start).Seconds() * d.comp
		if virt < 0 {
			continue // before this replay started
		}
		b := d.bucketOf(virt)
		b.Events = append(b.Events, fmt.Sprintf("scale:%d->%d", ev.From, ev.To))
	}
}

// finish freezes percentiles, sums the timeline into the summary, and
// evaluates the SLO.
func (d *driver) finish() *Result {
	var all []float64
	for i := range d.buckets {
		b := &d.buckets[i]
		b.finish()
		all = append(all, b.latencies...)
		d.sum.Issued += b.Issued
		d.sum.Completed += b.Completed
		d.sum.Failed += b.Failed
		d.sum.Rejected429 += b.Rejected429
		d.sum.Unavail503 += b.Unavail503
		d.sum.Errors += b.Errors
		d.sum.Retries += b.Retries
		d.sum.CacheHits += b.CacheHits
	}
	d.sum.Profile = d.p.Name
	d.sum.Compression = d.comp
	d.sum.DurationSec = d.p.TotalDurationSec()
	d.sum.P50Ms = percentile(all, 50)
	d.sum.P95Ms = percentile(all, 95)
	d.sum.P99Ms = percentile(all, 99)
	d.sum.RetryPenaltyMs = d.penaltyMs
	hits := d.lastHits - d.firstHits
	misses := d.lastMisses - d.firstMisses
	if tot := hits + misses; tot > 0 {
		d.sum.CacheHitRate = float64(hits) / float64(tot)
	}
	EvaluateSLO(d.p.SLO, &d.sum)
	d.logf("loadgen: done: issued %d, completed %d, 429 %d, 503 %d, p99 %.1fms, pass=%v",
		d.sum.Issued, d.sum.Completed, d.sum.Rejected429, d.sum.Unavail503, d.sum.P99Ms, d.sum.Pass)
	return &Result{Buckets: d.buckets, Summary: d.sum}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
