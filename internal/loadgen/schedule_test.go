package loadgen

import (
	"reflect"
	"testing"

	"mlbench/internal/core"
)

func scheduleProfile(phases []core.Phase) core.Profile {
	return core.Profile{
		Name: "s",
		Templates: []core.Template{
			{Name: "a", Weight: 1, Spec: core.RunSpec{Figure: "fig1a"}},
			{Name: "b", Weight: 3, UniqueSeed: true, Spec: core.RunSpec{Figure: "fig1b"}},
		},
		Phases: phases,
	}.Normalize()
}

func TestScheduleCountsMatchRateIntegral(t *testing.T) {
	cases := []struct {
		name  string
		phase core.Phase
		want  int // integral of λ over the phase
	}{
		{"constant", core.Phase{Name: "c", DurationSec: 30, RPS: 2}, 60},
		{"ramp", core.Phase{Name: "r", DurationSec: 60, Pattern: core.PatternRamp, RPS: 0, ToRPS: 10}, 300},
		{"burst", core.Phase{Name: "b", DurationSec: 40, Pattern: core.PatternBurst,
			RPS: 1, BurstRPS: 6, BurstEverySec: 20, BurstLenSec: 5}, 90}, // 30*1 + 10*6
		{"diurnal", core.Phase{Name: "d", DurationSec: 40, Pattern: core.PatternDiurnal,
			RPS: 1, PeakRPS: 5, PeriodSec: 20}, 120}, // mean (1+5)/2 over full periods
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := len(Schedule(scheduleProfile([]core.Phase{tc.phase})))
			// The discrete integrator carries at most one request of
			// rounding per phase.
			if got < tc.want-1 || got > tc.want+1 {
				t.Fatalf("arrivals = %d, want %d±1", got, tc.want)
			}
		})
	}
}

func TestScheduleDeterministicAndOrdered(t *testing.T) {
	p := scheduleProfile([]core.Phase{
		{Name: "r", DurationSec: 30, Pattern: core.PatternRamp, RPS: 1, ToRPS: 5},
		{Name: "c", DurationSec: 30, RPS: 2},
	})
	s1 := Schedule(p)
	s2 := Schedule(p)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same profile produced two different schedules")
	}
	var sawUnique bool
	for i, a := range s1 {
		if i > 0 && a.AtSec < s1[i-1].AtSec {
			t.Fatalf("arrivals out of order at %d: %g < %g", i, a.AtSec, s1[i-1].AtSec)
		}
		if a.AtSec < 0 || a.AtSec >= 60 {
			t.Fatalf("arrival %d outside the profile: %g", i, a.AtSec)
		}
		switch a.Template {
		case 0:
			if a.Seed != 0 {
				t.Fatalf("template a is not unique_seed but got seed %d", a.Seed)
			}
		case 1:
			if a.Seed == 0 {
				t.Fatalf("template b is unique_seed but arrival %d has no seed", i)
			}
			sawUnique = true
		default:
			t.Fatalf("arrival %d picked unknown template %d", i, a.Template)
		}
	}
	if !sawUnique {
		t.Fatal("weighted pick never chose the weight-3 template")
	}
	// A different seed reshuffles the template picks but not the count.
	p2 := p
	p2.Seed = 99
	s3 := Schedule(p2)
	if len(s3) != len(s1) {
		t.Fatalf("seed changed the arrival count: %d vs %d", len(s3), len(s1))
	}
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced the identical schedule")
	}
}
