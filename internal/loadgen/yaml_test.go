package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// The YAML-subset reader itself is tested in internal/yamlite; these
// tests cover the profile-level loading built on top of it.

func TestLoadProfileYAMLMatchesJSON(t *testing.T) {
	yamlPath := filepath.Join("..", "..", "profiles", "ramp-burst-drain.yaml")
	p, err := LoadProfile(yamlPath)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "ramp-burst-drain" || p.Compression != 100 || len(p.Templates) != 2 ||
		len(p.Phases) != 3 || len(p.Events) != 3 || p.SLO == nil {
		t.Fatalf("profile did not survive YAML round-trip: %+v", p)
	}
	if !p.Templates[1].UniqueSeed || p.Templates[1].Spec.Figure != "fig1b" {
		t.Fatalf("cold template: %+v", p.Templates[1])
	}
	if p.Events[0].Label != "warmup-done" {
		t.Fatalf("event label: %+v", p.Events[0])
	}

	// The same profile expressed as JSON loads identically.
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := LoadProfile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("YAML and JSON profiles differ:\n%+v\n%+v", p, p2)
	}
}

func TestLoadProfileRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadProfile(write("x.toml", "")); err == nil ||
		!strings.Contains(err.Error(), "unsupported profile extension") {
		t.Fatalf("extension error: %v", err)
	}
	if _, err := LoadProfile(write("x.yaml", "name: t\nrsp: 1")); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := LoadProfile(write("y.yaml", "name: t")); err == nil {
		t.Fatal("invalid profile accepted (no templates)")
	}
	if _, err := LoadProfile(write("z.yaml", "a:\n\tb: 1")); err == nil ||
		!strings.Contains(err.Error(), "tabs are not allowed") {
		t.Fatalf("yamlite error not surfaced: %v", err)
	}
}
