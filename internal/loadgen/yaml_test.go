package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestYAMLToJSONSubset(t *testing.T) {
	in := `
# header comment
name: demo
compression: 100
seed: 42
nested:
  a: 1
  b: "quoted # not a comment"
  c: 'single'
  flag: true
  nothing: null
list:
  - 1
  - two
  - key: v
    other: 2.5
blocks:
  - name: x
    spec:
      figure: fig1a
`
	got, err := yamlToJSON([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(got, &v); err != nil {
		t.Fatalf("invalid JSON %s: %v", got, err)
	}
	want := map[string]any{
		"name":        "demo",
		"compression": 100.0,
		"seed":        42.0,
		"nested": map[string]any{
			"a": 1.0, "b": "quoted # not a comment", "c": "single",
			"flag": true, "nothing": nil,
		},
		"list": []any{1.0, "two", map[string]any{"key": "v", "other": 2.5}},
		"blocks": []any{
			map[string]any{"name": "x", "spec": map[string]any{"figure": "fig1a"}},
		},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("parsed:\n%#v\nwant:\n%#v", v, want)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"tabs", "a:\n\tb: 1", "tabs are not allowed"},
		{"no colon", "just a bare line", "expected 'key: value'"},
		{"no space after colon", "a:1", "expected a space after ':'"},
		{"bad indent", "a: 1\n   b: 2", "unexpected indentation"},
		{"dup key", "a: 1\na: 2", "duplicate key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := yamlToJSON([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadProfileYAMLMatchesJSON(t *testing.T) {
	yamlPath := filepath.Join("..", "..", "profiles", "ramp-burst-drain.yaml")
	p, err := LoadProfile(yamlPath)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "ramp-burst-drain" || p.Compression != 100 || len(p.Templates) != 2 ||
		len(p.Phases) != 3 || len(p.Events) != 3 || p.SLO == nil {
		t.Fatalf("profile did not survive YAML round-trip: %+v", p)
	}
	if !p.Templates[1].UniqueSeed || p.Templates[1].Spec.Figure != "fig1b" {
		t.Fatalf("cold template: %+v", p.Templates[1])
	}
	if p.Events[0].Label != "warmup-done" {
		t.Fatalf("event label: %+v", p.Events[0])
	}

	// The same profile expressed as JSON loads identically.
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := LoadProfile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("YAML and JSON profiles differ:\n%+v\n%+v", p, p2)
	}
}

func TestLoadProfileRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadProfile(write("x.toml", "")); err == nil ||
		!strings.Contains(err.Error(), "unsupported profile extension") {
		t.Fatalf("extension error: %v", err)
	}
	if _, err := LoadProfile(write("x.yaml", "name: t\nrsp: 1")); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := LoadProfile(write("y.yaml", "name: t")); err == nil {
		t.Fatal("invalid profile accepted (no templates)")
	}
}
