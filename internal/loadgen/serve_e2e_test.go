package loadgen

import (
	"context"
	"testing"
	"time"

	"mlbench/internal/core"
	"mlbench/internal/serve"
)

// slowRunner is a runner for real-server tests: fast enough to keep the
// tests short, slow enough that a burst overruns a one-deep queue.
func slowRunner(d time.Duration) serve.Runner {
	return func(ctx context.Context, spec core.RunSpec, progress func(core.ProgressEvent)) (*serve.RunOutput, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &serve.RunOutput{Table: "t\n", Markdown: "t\n", Matched: 1, Total: 1}, nil
	}
}

// uniqueProfile is a one-phase profile whose requests never coalesce.
func uniqueProfile(name string, phase core.Phase, events ...core.ScheduledEvent) core.Profile {
	return core.Profile{
		Name:      name,
		BucketSec: 1,
		GraceSec:  3,
		Templates: []core.Template{
			{Name: "u", UniqueSeed: true, Spec: core.RunSpec{Figure: "fig1a", Iterations: 1}},
		},
		Phases: []core.Phase{phase},
		Events: events,
	}.Normalize()
}

// TestBackpressureRetriesSucceed drives a queue-overrun burst into a real
// serve.Server: the driver sees 429s with a positive Retry-After, honors
// it on the wall clock, and the retried requests complete — with the
// retry wait accounted separately from the service latency percentiles.
func TestBackpressureRetriesSucceed(t *testing.T) {
	// 100ms service at one worker caps throughput at 10 rps — the 25 rps
	// burst must overflow the one-deep queue.
	s := serve.New(serve.Config{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: time.Second,
		Runner:     slowRunner(100 * time.Millisecond),
	})
	defer drainServer(t, s)

	res, err := Run(uniqueProfile("overrun", core.Phase{
		Name: "burst", DurationSec: 1, RPS: 25,
	}), Options{
		BaseURL: "http://real",
		Client:  HandlerClient(s.Handler()),
		Clock:   WallClock{},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	if sum.Rejected429 == 0 {
		t.Fatal("queue overrun produced no 429s")
	}
	if sum.Retries == 0 {
		t.Fatal("driver never honored Retry-After with a retry")
	}
	if sum.RetrySucceeded == 0 {
		t.Fatalf("no retried request completed: %+v", sum)
	}
	// The Retry-After wait (1s wall) lands in the penalty column, not the
	// latency percentiles: the longest service latency stays far below
	// one retry round-trip.
	if sum.RetryPenaltyMs < 900*float64(sum.RetrySucceeded) {
		t.Errorf("retry penalty %.0fms implausibly small for %d retried completions",
			sum.RetryPenaltyMs, sum.RetrySucceeded)
	}
	if sum.P99Ms >= 900 {
		t.Errorf("p99 %.0fms absorbed the retry wait; it must track the last attempt only", sum.P99Ms)
	}
	if sum.Errors != 0 || sum.Failed != 0 {
		t.Errorf("unexpected errors/failures: %+v", sum)
	}
	if sum.Completed == 0 {
		t.Error("nothing completed")
	}
}

// TestDrainDuringLoad fires the profile's drain event mid-replay against
// a real server: submissions accepted before the drain all complete
// (in-flight and queued runs are never dropped) and the driver reports
// the 503 tail for the arrivals after it.
func TestDrainDuringLoad(t *testing.T) {
	s := serve.New(serve.Config{
		Workers:    2,
		QueueDepth: 16,
		Runner:     slowRunner(20 * time.Millisecond),
	})
	defer drainServer(t, s)

	res, err := Run(uniqueProfile("drain-mid",
		core.Phase{Name: "steady", DurationSec: 2, RPS: 10},
		core.ScheduledEvent{AtSec: 1, Action: core.EventDrain},
	), Options{
		BaseURL: "http://real",
		Client:  HandlerClient(s.Handler()),
		Clock:   WallClock{},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	if sum.Unavail503 == 0 {
		t.Fatal("no 503 tail after the drain event")
	}
	if sum.Completed == 0 {
		t.Fatal("nothing completed before the drain")
	}
	if sum.Failed != 0 || sum.Errors != 0 {
		t.Errorf("accepted runs were dropped by the drain: %+v", sum)
	}
	// Conservation: every issued request either completed (accepted
	// before the drain) or was refused with 503 (after it) — the capacity
	// comfortably exceeds 10 rps, so nothing is rejected or left pending.
	if sum.Completed+sum.Unavail503 != sum.Issued {
		t.Errorf("issued %d != completed %d + 503 %d: runs went missing",
			sum.Issued, sum.Completed, sum.Unavail503)
	}
	// The drain annotation lands in the timeline.
	var sawDrain bool
	for _, b := range res.Buckets {
		for _, ev := range b.Events {
			if ev == core.EventDrain {
				sawDrain = true
			}
		}
	}
	if !sawDrain {
		t.Error("drain event missing from the timeline events column")
	}
}

func drainServer(t *testing.T, s *serve.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Logf("drain: %v", err)
	}
}
