package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mlbench/internal/core"
	"mlbench/internal/serve"
)

// FakeServerConfig shapes the deterministic server model.
type FakeServerConfig struct {
	// Workers is the fixed pool size (ignored when Autoscale is set, which
	// starts the pool at Autoscale.Min).
	Workers int
	// QueueDepth bounds accepted-but-not-started jobs; beyond it
	// submissions get 429.
	QueueDepth int
	// RetryAfterSec is the Retry-After header on 429s (wall seconds,
	// default 1).
	RetryAfterSec int
	// ServiceTime is the wall duration one fresh run takes (default
	// 10ms).
	ServiceTime time.Duration
	// Autoscale enables the elastic pool, driven by the same
	// serve.Autoscaler policy the real server uses.
	Autoscale *serve.AutoscaleConfig
}

// FakeServer is a discrete-event model of mlbenchd for deterministic
// load-driver tests: it speaks the same HTTP surface (POST/GET /v1/runs,
// /v1/metrics, /v1/cache/flush, /v1/drain, /v1/autoscaler) but all state
// transitions happen synchronously inside request handling — a job
// "finishes" when the injected clock passes its start plus ServiceTime,
// evaluated lazily on the next request. No goroutines, no sockets (pair
// it with HandlerClient), so a FakeClock replay is byte-reproducible;
// crucially it reuses the production serve.Autoscaler policy, making the
// golden worker-count trace a real test of the shipping scaling logic.
type FakeServer struct {
	clock Clock
	cfg   FakeServerConfig
	mux   *http.ServeMux

	mu          sync.Mutex
	nextID      int
	jobs        map[string]*fakeJob
	order       []string
	byKey       map[string]*fakeJob
	queue       []*fakeJob
	running     []*fakeJob
	workers     int
	scaler      *serve.Autoscaler
	scaleEvents []serve.ScaleEvent
	nextTick    time.Time
	draining    bool
	m           serve.Metrics
}

type fakeJob struct {
	id, key  string
	state    string // queued | running | done
	finishAt time.Time
}

// NewFakeServer builds the model on the given clock.
func NewFakeServer(clock Clock, cfg FakeServerConfig) *FakeServer {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.RetryAfterSec <= 0 {
		cfg.RetryAfterSec = 1
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 10 * time.Millisecond
	}
	s := &FakeServer{
		clock: clock,
		cfg:   cfg,
		jobs:  map[string]*fakeJob{},
		byKey: map[string]*fakeJob{},
	}
	s.workers = cfg.Workers
	if cfg.Autoscale != nil {
		s.scaler = serve.NewAutoscaler(*cfg.Autoscale)
		s.workers = s.scaler.Config().Min
		s.nextTick = clock.Now().Add(s.scaler.Config().Interval)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/autoscaler", s.handleAutoscaler)
	mux.HandleFunc("POST /v1/cache/flush", s.handleFlush)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	s.mux = mux
	return s
}

// Handler is the model's HTTP surface.
func (s *FakeServer) Handler() http.Handler { return s.mux }

// advance replays every completion and autoscaler tick up to now, in
// event-time order — the discrete-event core that stands in for the real
// server's goroutines. Caller holds s.mu.
func (s *FakeServer) advance(now time.Time) {
	for {
		// Next completion among running jobs.
		var finish *fakeJob
		for _, j := range s.running {
			if finish == nil || j.finishAt.Before(finish.finishAt) {
				finish = j
			}
		}
		tickDue := s.scaler != nil && !s.nextTick.After(now)
		finishDue := finish != nil && !finish.finishAt.After(now)
		switch {
		case finishDue && (!tickDue || !s.nextTick.Before(finish.finishAt)):
			s.finishJob(finish)
		case tickDue:
			s.tick(s.nextTick)
			s.nextTick = s.nextTick.Add(s.scaler.Config().Interval)
		default:
			return
		}
	}
}

// finishJob completes one running job at its finish time and promotes
// queued work into the freed capacity.
func (s *FakeServer) finishJob(done *fakeJob) {
	at := done.finishAt
	for i, j := range s.running {
		if j == done {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	done.state = "done"
	s.m.Completed++
	for len(s.running) < s.workers && len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		next.state = "running"
		next.finishAt = at.Add(s.cfg.ServiceTime)
		s.running = append(s.running, next)
	}
}

// tick feeds the autoscaler one sample; scale-downs never preempt running
// jobs (the effective capacity just shrinks for future promotions),
// matching the real server's retire-between-jobs rule.
func (s *FakeServer) tick(at time.Time) {
	sample := serve.LoadSample{Queue: len(s.queue), Busy: len(s.running), Workers: s.workers}
	target, reason := s.scaler.Decide(at, sample)
	if target == s.workers {
		return
	}
	if target > s.workers {
		s.m.ScaleUps++
	} else {
		s.m.ScaleDowns++
	}
	s.scaleEvents = append(s.scaleEvents, serve.ScaleEvent{At: at, From: s.workers, To: target, Reason: reason})
	s.workers = target
	for len(s.running) < s.workers && len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		next.state = "running"
		next.finishAt = at.Add(s.cfg.ServiceTime)
		s.running = append(s.running, next)
	}
}

func (s *FakeServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	s.advance(now)
	if s.draining {
		fakeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "serve: draining"})
		return
	}
	spec, err := core.ParseRunSpec(body)
	if err != nil {
		fakeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		fakeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	key := spec.CacheKey()
	if j := s.byKey[key]; j != nil {
		if j.state == "done" {
			s.m.CacheHits++
			fakeJSON(w, http.StatusOK, map[string]any{"id": j.id, "state": j.state, "coalesced": false, "cached": true})
		} else {
			s.m.Coalesced++
			fakeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "state": j.state, "coalesced": true, "cached": false})
		}
		return
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.m.Rejected++
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSec))
		fakeJSON(w, http.StatusTooManyRequests, map[string]any{"error": "serve: queue full"})
		return
	}
	s.nextID++
	j := &fakeJob{id: fmt.Sprintf("r%d", s.nextID), key: key, state: "queued"}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byKey[key] = j
	s.m.Submitted++
	s.m.CacheMisses++
	if len(s.running) < s.workers {
		j.state = "running"
		j.finishAt = now.Add(s.cfg.ServiceTime)
		s.running = append(s.running, j)
	} else {
		s.queue = append(s.queue, j)
	}
	fakeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "state": j.state, "coalesced": false, "cached": false})
}

func (s *FakeServer) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(s.clock.Now())
	runs := make([]map[string]any, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		runs = append(runs, map[string]any{"id": j.id, "state": j.state})
	}
	fakeJSON(w, http.StatusOK, map[string]any{"runs": runs})
}

func (s *FakeServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(s.clock.Now())
	m := s.m
	m.Running = len(s.running)
	m.QueueDepth = len(s.queue)
	m.QueueCap = s.cfg.QueueDepth
	m.Workers = s.workers
	m.WorkersBusy = len(s.running)
	if s.scaler != nil {
		m.WorkersMin = s.scaler.Config().Min
		m.WorkersMax = s.scaler.Config().Max
	} else {
		m.WorkersMin = s.cfg.Workers
		m.WorkersMax = s.cfg.Workers
	}
	m.Jobs = len(s.jobs)
	m.Draining = s.draining
	fakeJSON(w, http.StatusOK, m)
}

func (s *FakeServer) handleAutoscaler(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(s.clock.Now())
	resp := map[string]any{"enabled": s.scaler != nil, "events": s.scaleEvents}
	if s.scaler != nil {
		resp["config"] = s.scaler.Config()
	}
	fakeJSON(w, http.StatusOK, resp)
}

func (s *FakeServer) handleFlush(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(s.clock.Now())
	n := 0
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state == "done" {
			n++
			delete(s.jobs, id)
			if s.byKey[j.key] == j {
				delete(s.byKey, j.key)
			}
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	fakeJSON(w, http.StatusOK, map[string]any{"flushed": n})
}

func (s *FakeServer) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(s.clock.Now())
	s.draining = true
	fakeJSON(w, http.StatusOK, map[string]any{"draining": true})
}

func fakeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
