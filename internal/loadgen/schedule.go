package loadgen

import (
	"mlbench/internal/core"
	"mlbench/internal/randgen"
)

// Arrival is one scheduled request: a profile offset and the template it
// draws.
type Arrival struct {
	// AtSec is the arrival offset in profile seconds from replay start.
	AtSec float64
	// Template indexes Profile.Templates.
	Template int
	// Seed is the substituted per-request seed when the template sets
	// unique_seed (0 = use the template spec's own seed).
	Seed uint64
}

// Schedule expands a normalized profile into its deterministic arrival
// list: the phase rate functions are numerically integrated (the emitted
// count over any interval matches the integral of λ within one request)
// and each arrival draws a template from the weighted mix with the
// profile's seeded RNG. The same profile and seed always produce the
// identical schedule — the foundation of the replay's reproducibility.
func Schedule(p core.Profile) []Arrival {
	rng := randgen.New(p.Seed)
	var total float64
	for _, t := range p.Templates {
		total += t.Weight
	}
	// Integration step: fine enough that ramps and short bursts land in
	// the right bucket, floored so pathological bucket sizes stay cheap.
	dt := p.BucketSec / 16
	if dt < 1e-3 {
		dt = 1e-3
	}
	var out []Arrival
	var phaseStart float64
	for _, ph := range p.Phases {
		acc := 0.0
		for t := 0.0; t < ph.DurationSec; t += dt {
			step := dt
			if rem := ph.DurationSec - t; rem < step {
				step = rem
			}
			// Midpoint rule: exact for linear ramps, second-order for the
			// smooth patterns — the emitted count over any window matches
			// the integral of λ within one request.
			acc += ph.Rate(t+step/2) * step
			for acc >= 1 {
				acc--
				a := Arrival{AtSec: phaseStart + t}
				pick := rng.Float64() * total
				for i, tmpl := range p.Templates {
					pick -= tmpl.Weight
					if pick < 0 || i == len(p.Templates)-1 {
						a.Template = i
						if tmpl.UniqueSeed {
							a.Seed = rng.Uint64() | 1 // never 0: 0 means "unset"
						}
						break
					}
				}
				out = append(out, a)
			}
		}
		phaseStart += ph.DurationSec
	}
	return out
}
