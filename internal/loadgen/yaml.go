package loadgen

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mlbench/internal/core"
	"mlbench/internal/yamlite"
)

// LoadProfile reads a traffic profile from a .yaml/.yml or .json file,
// parses it strictly, normalizes defaults, and validates it. YAML support
// is the deliberately small hand-rolled subset in internal/yamlite (the
// repo takes no dependencies): indentation-nested mappings, `- `
// sequences, scalars, quotes, and # comments — which covers every profile
// this repo ships. Anchors, flow collections, and multi-line strings are
// not supported.
func LoadProfile(path string) (core.Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Profile{}, fmt.Errorf("loadgen: %w", err)
	}
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".yaml", ".yml":
		data, err = yamlite.ToJSON(data)
		if err != nil {
			return core.Profile{}, fmt.Errorf("loadgen: %s: %w", path, err)
		}
	case ".json":
	default:
		return core.Profile{}, fmt.Errorf("loadgen: %s: unsupported profile extension %q (want .yaml, .yml, or .json)", path, ext)
	}
	p, err := core.ParseProfile(data)
	if err != nil {
		return core.Profile{}, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	p = p.Normalize()
	if err := p.Validate(); err != nil {
		return core.Profile{}, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return p, nil
}
