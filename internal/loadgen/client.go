package loadgen

import (
	"net/http"
	"net/http/httptest"
)

// HandlerClient wraps an http.Handler as an *http.Client whose requests
// are served in process — no sockets, no goroutines, so a replay against
// the FakeServer is fully deterministic. The BaseURL host is arbitrary
// (the handler never sees the network).
func HandlerClient(h http.Handler) *http.Client {
	return &http.Client{Transport: handlerTransport{h: h}}
}

type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}
