// Package ordmap provides a small insertion-ordered map. The platform
// engines use it instead of raw Go maps wherever iteration order would
// otherwise leak nondeterminism into combine order, shuffle layout, or
// downstream RNG consumption — the reproduction's cross-engine agreement
// tests depend on bit-identical trajectories.
package ordmap

// Map is an insertion-ordered map from K to V. The zero value is not
// usable; construct with New.
type Map[K comparable, V any] struct {
	idx  map[K]int
	keys []K
	vals []V
}

// New returns an empty ordered map.
func New[K comparable, V any]() *Map[K, V] {
	return &Map[K, V]{idx: make(map[K]int)}
}

// Get returns the value for k and whether it is present.
func (o *Map[K, V]) Get(k K) (V, bool) {
	if i, ok := o.idx[k]; ok {
		return o.vals[i], true
	}
	var zero V
	return zero, false
}

// Set inserts or replaces the value for k, preserving first-insertion order.
func (o *Map[K, V]) Set(k K, v V) {
	if i, ok := o.idx[k]; ok {
		o.vals[i] = v
		return
	}
	o.idx[k] = len(o.keys)
	o.keys = append(o.keys, k)
	o.vals = append(o.vals, v)
}

// Merge folds v into the existing value for k with f, or inserts v.
func (o *Map[K, V]) Merge(k K, v V, f func(old, new V) V) {
	if i, ok := o.idx[k]; ok {
		o.vals[i] = f(o.vals[i], v)
		return
	}
	o.Set(k, v)
}

// GetOrInsert returns the value for k, inserting mk() first if absent.
func (o *Map[K, V]) GetOrInsert(k K, mk func() V) V {
	if i, ok := o.idx[k]; ok {
		return o.vals[i]
	}
	v := mk()
	o.Set(k, v)
	return v
}

// Len returns the entry count.
func (o *Map[K, V]) Len() int { return len(o.keys) }

// Each visits entries in insertion order.
func (o *Map[K, V]) Each(f func(k K, v V)) {
	for i, k := range o.keys {
		f(k, o.vals[i])
	}
}

// Keys returns the keys in insertion order. The caller must not modify
// the returned slice.
func (o *Map[K, V]) Keys() []K { return o.keys }
