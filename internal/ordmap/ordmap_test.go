package ordmap

import (
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	m := New[string, int]()
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty map claims to contain a key")
	}
	m.Set("a", 1)
	m.Set("b", 2)
	m.Set("a", 3)
	if v, ok := m.Get("a"); !ok || v != 3 {
		t.Errorf("Get(a) = %v, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestInsertionOrderPreserved(t *testing.T) {
	m := New[int, int]()
	for _, k := range []int{5, 3, 9, 3, 1} {
		m.Set(k, k)
	}
	want := []int{5, 3, 9, 1}
	keys := m.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestMerge(t *testing.T) {
	m := New[string, int]()
	add := func(a, b int) int { return a + b }
	m.Merge("x", 1, add)
	m.Merge("x", 2, add)
	m.Merge("y", 5, add)
	if v, _ := m.Get("x"); v != 3 {
		t.Errorf("Merge x = %d, want 3", v)
	}
	if v, _ := m.Get("y"); v != 5 {
		t.Errorf("Merge y = %d, want 5", v)
	}
}

func TestGetOrInsert(t *testing.T) {
	m := New[int, *int]()
	calls := 0
	mk := func() *int { calls++; x := 7; return &x }
	p1 := m.GetOrInsert(1, mk)
	p2 := m.GetOrInsert(1, mk)
	if p1 != p2 || calls != 1 {
		t.Errorf("GetOrInsert created %d values", calls)
	}
}

func TestEachVisitsAllInOrder(t *testing.T) {
	m := New[int, int]()
	for i := 10; i > 0; i-- {
		m.Set(i, i*i)
	}
	prev := 11
	count := 0
	m.Each(func(k, v int) {
		if k != prev-1 || v != k*k {
			t.Errorf("Each out of order: k=%d prev=%d", k, prev)
		}
		prev = k
		count++
	})
	if count != 10 {
		t.Errorf("Each visited %d entries", count)
	}
}

// Property: after any sequence of sets, Len equals the number of distinct
// keys and Each yields first-insertion order.
func TestQuickOrderInvariant(t *testing.T) {
	f := func(keys []uint8) bool {
		m := New[uint8, int]()
		var order []uint8
		seen := map[uint8]bool{}
		for i, k := range keys {
			m.Set(k, i)
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
		}
		if m.Len() != len(order) {
			return false
		}
		i := 0
		ok := true
		m.Each(func(k uint8, v int) {
			if k != order[i] {
				ok = false
			}
			i++
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
