package relational

import (
	"mlbench/internal/sim"
)

// Fault recovery, the Hadoop way: SimSQL compiles to MapReduce jobs, and
// MapReduce tolerates a lost worker by re-executing only that worker's
// in-flight task attempt from its on-disk inputs (every job boundary is a
// durable HDFS/local-disk spill). Recovery therefore costs the victim's
// lost work plus one task-attempt launch — no other machine rolls back,
// no lineage recomputes. Stragglers are handled by speculative execution:
// a backup attempt elsewhere bounds the slowdown at
// CostModel.MRSpecExecCap. This is why the paper's SimSQL runs were slow
// but never failed.

// handleFault is the engine's sim.FaultHandler: re-run the failed task.
func (e *Engine) handleFault(f sim.FaultInfo) error {
	e.c.AdvanceNamed("mr-task-rerun", f.LostSec+e.c.Config().Cost.MRTaskRetrySec)
	e.recoveries++
	return nil
}

// Recoveries reports how many task re-executions the engine has performed.
func (e *Engine) Recoveries() int { return e.recoveries }
