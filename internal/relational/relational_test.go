package relational

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"mlbench/internal/sim"
)

func testEngine(machines int) *Engine {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	return NewEngine(sim.New(cfg))
}

// makeTable distributes rows round-robin over machines.
func makeTable(name string, schema Schema, machines int, scaled bool, rows ...Tuple) *Table {
	t := NewTable(name, schema, machines)
	t.Scaled = scaled
	for i, r := range rows {
		t.Parts[i%machines] = append(t.Parts[i%machines], r)
	}
	return t
}

func sortRows(rows []Tuple) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func TestSchemaHelpers(t *testing.T) {
	s := Ints("a", "b").Concat(Floats("x"))
	if len(s) != 3 || s[2].Kind != KindFloat {
		t.Fatalf("schema = %+v", s)
	}
	if s.ColIndex("b") != 1 || s.ColIndex("zzz") != -1 {
		t.Errorf("ColIndex wrong")
	}
}

func TestTupleAccessors(t *testing.T) {
	tu := T(3, 2.5)
	if tu.Int(0) != 3 || tu.Float(1) != 2.5 {
		t.Errorf("accessors wrong")
	}
	c := tu.Clone()
	c[0] = 9
	if tu[0] != 3 {
		t.Error("Clone aliases")
	}
}

func TestScan(t *testing.T) {
	e := testEngine(2)
	tbl := makeTable("d", Ints("id"), 2, true, T(1), T(2), T(3))
	got, err := e.Run("q", ScanT(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestSelectProject(t *testing.T) {
	e := testEngine(2)
	tbl := makeTable("d", Ints("id", "v"), 2, true,
		T(1, 10), T(2, 20), T(3, 30), T(4, 40))
	p := ProjectP(
		SelectP(ScanT(tbl), func(tu Tuple) bool { return tu.Int(1) >= 20 }),
		Floats("doubled"),
		func(tu Tuple) Tuple { return T(tu.Float(1) * 2) },
	)
	got, err := e.Run("q", p)
	if err != nil {
		t.Fatal(err)
	}
	rows := got.Rows()
	sortRows(rows)
	want := []float64{40, 60, 80}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for i, w := range want {
		if rows[i][0] != w {
			t.Errorf("row %d = %v, want %v", i, rows[i][0], w)
		}
	}
}

func TestFlatMapP(t *testing.T) {
	e := testEngine(2)
	tbl := makeTable("d", Ints("n"), 2, true, T(2), T(3))
	p := FlatMapP(ScanT(tbl), Ints("i"), func(tu Tuple) []Tuple {
		out := make([]Tuple, tu.Int(0))
		for i := range out {
			out[i] = T(float64(i))
		}
		return out
	})
	got, err := e.Run("q", p)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 5 {
		t.Errorf("rows = %d, want 5", got.NumRows())
	}
}

func TestUnionAll(t *testing.T) {
	e := testEngine(2)
	a := makeTable("a", Ints("x"), 2, false, T(1), T(2))
	b := makeTable("b", Ints("x"), 2, false, T(3))
	got, err := e.Run("q", UnionAllP(ScanT(a), ScanT(b)))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestHashJoin(t *testing.T) {
	e := testEngine(3)
	emp := makeTable("emp", Ints("eid", "dept"), 3, true,
		T(1, 10), T(2, 20), T(3, 10), T(4, 30))
	dept := makeTable("dept", Ints("did", "size"), 3, false,
		T(10, 100), T(20, 200))
	got, err := e.Run("q", HashJoinP(ScanT(emp), ScanT(dept), []int{1}, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	rows := got.Rows()
	sortRows(rows)
	if len(rows) != 3 {
		t.Fatalf("join rows = %v", rows)
	}
	// eid 1 and 3 join dept 10; eid 2 joins dept 20; eid 4 drops.
	if rows[0].Int(0) != 1 || rows[0].Int(3) != 100 {
		t.Errorf("row0 = %v", rows[0])
	}
	if rows[2].Int(0) != 3 || rows[2].Int(2) != 10 {
		t.Errorf("row2 = %v", rows[2])
	}
	if len(got.Schema) != 4 {
		t.Errorf("join schema = %v", got.Schema)
	}
}

func TestArithJoinMatchesHashJoinResult(t *testing.T) {
	// The quirk plan must be slower but produce the same rows for an
	// equality-with-arithmetic predicate.
	const n = 500
	build := func() (*Engine, *Table, *Table) {
		e := testEngine(2)
		var lRows, rRows []Tuple
		for i := 0; i < n; i++ {
			lRows = append(lRows, T(float64(i), float64(10*i)))
			rRows = append(rRows, T(float64(i+1), float64(100*i)))
		}
		l := makeTable("l", Ints("pos", "v"), 2, true, lRows...)
		r := makeTable("r", Ints("pos", "w"), 2, true, rRows...)
		return e, l, r
	}
	// Arith join: l.pos = r.pos - 1.
	e1, l1, r1 := build()
	cross, err := e1.Run("q", ArithJoinP(ScanT(l1), ScanT(r1), func(lt, rt Tuple) bool {
		return lt.Int(0) == rt.Int(0)-1
	}))
	if err != nil {
		t.Fatal(err)
	}
	crossTime := e1.Cluster().Now()

	// Workaround: materialize nextPos = pos+1 on the left, equi-join.
	e2, l2, r2 := build()
	lNext := ProjectP(ScanT(l2), Ints("pos", "v", "nextPos"), func(tu Tuple) Tuple {
		return T(tu.Float(0), tu.Float(1), tu.Float(0)+1)
	})
	equi, err := e2.Run("q", HashJoinP(lNext, ScanT(r2), []int{2}, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	equiTime := e2.Cluster().Now()

	if cross.NumRows() != n || equi.NumRows() != n {
		t.Fatalf("cross=%d equi=%d rows, want %d", cross.NumRows(), equi.NumRows(), n)
	}
	if crossTime <= equiTime {
		t.Errorf("cross-product plan (%v) should be slower than equi-join plan (%v)", crossTime, equiTime)
	}
}

func TestGroupAgg(t *testing.T) {
	e := testEngine(3)
	tbl := makeTable("d", Schema{{"g", KindInt}, {"v", KindFloat}}, 3, true,
		T(1, 2), T(1, 4), T(2, 10), T(2, 20), T(2, 30), T(3, 7))
	p := GroupAggP(ScanT(tbl), []int{0}, []AggSpec{
		{Kind: AggSum, Col: 1, Name: "sum"},
		{Kind: AggCount, Name: "cnt"},
		{Kind: AggAvg, Col: 1, Name: "avg"},
		{Kind: AggMin, Col: 1, Name: "min"},
		{Kind: AggMax, Col: 1, Name: "max"},
	})
	got, err := e.Run("q", p)
	if err != nil {
		t.Fatal(err)
	}
	rows := got.Rows()
	sortRows(rows)
	if len(rows) != 3 {
		t.Fatalf("groups = %v", rows)
	}
	// Group 2: sum 60, count 3, avg 20, min 10, max 30.
	g2 := rows[1]
	if g2.Int(0) != 2 || g2[1] != 60 || g2[2] != 3 || g2[3] != 20 || g2[4] != 10 || g2[5] != 30 {
		t.Errorf("group 2 = %v", g2)
	}
	if len(got.Schema) != 6 {
		t.Errorf("schema = %v", got.Schema)
	}
}

func TestGroupAggMatchesReference(t *testing.T) {
	f := func(vals []uint8, mod uint8) bool {
		if mod == 0 {
			mod = 1
		}
		e := testEngine(2)
		rows := make([]Tuple, len(vals))
		for i, v := range vals {
			rows[i] = T(float64(v%mod), float64(v))
		}
		tbl := makeTable("d", Schema{{"g", KindInt}, {"v", KindFloat}}, 2, true, rows...)
		got, err := e.Run("q", GroupAggP(ScanT(tbl), []int{0}, []AggSpec{{Kind: AggSum, Col: 1, Name: "s"}}))
		if err != nil {
			return false
		}
		want := map[int64]float64{}
		for _, v := range vals {
			want[int64(v%mod)] += float64(v)
		}
		if got.NumRows() != len(want) {
			return false
		}
		for _, r := range got.Rows() {
			if math.Abs(want[r.Int(0)]-r[1]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// doublerVG is a VG function that emits each group's rows with values
// doubled plus a uniform draw, testing grouping and determinism.
type doublerVG struct{ addNoise bool }

func (d doublerVG) Name() string      { return "doubler" }
func (d doublerVG) OutSchema() Schema { return Schema{{"g", KindInt}, {"v", KindFloat}} }
func (d doublerVG) Apply(m VGMeter, params []Tuple) []Tuple {
	m.ChargeOps(len(params), 2, 1)
	out := make([]Tuple, len(params))
	for i, p := range params {
		v := p.Float(1) * 2
		if d.addNoise {
			v += m.RNG().Float64()
		}
		out[i] = T(p.Float(0), v)
	}
	return out
}

func TestVGApplyGrouped(t *testing.T) {
	e := testEngine(2)
	tbl := makeTable("d", Schema{{"g", KindInt}, {"v", KindFloat}}, 2, false,
		T(1, 1), T(1, 2), T(2, 3))
	got, err := e.Run("q", VGApplyP(doublerVG{}, 0, ScanT(tbl), true))
	if err != nil {
		t.Fatal(err)
	}
	rows := got.Rows()
	sortRows(rows)
	want := []float64{2, 4, 6}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for i, r := range rows {
		if r[1] != want[i] {
			t.Errorf("row %d = %v, want %v", i, r[1], want[i])
		}
	}
}

func TestVGApplySingleGroup(t *testing.T) {
	e := testEngine(3)
	tbl := makeTable("d", Schema{{"g", KindInt}, {"v", KindFloat}}, 3, false,
		T(1, 1), T(2, 2), T(3, 3))
	got, err := e.Run("q", VGApplyP(doublerVG{}, -1, ScanT(tbl), true))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	// Single-group apply runs on machine 0 only.
	if len(got.Parts[1])+len(got.Parts[2]) != 0 {
		t.Error("single-group VG output should live on machine 0")
	}
}

func TestVGDeterministicAcrossClusterSizes(t *testing.T) {
	run := func(machines int) []Tuple {
		e := testEngine(machines)
		rows := []Tuple{T(1, 1), T(2, 2), T(3, 3), T(4, 4)}
		tbl := makeTable("d", Schema{{"g", KindInt}, {"v", KindFloat}}, machines, false, rows...)
		got, err := e.Run("q", VGApplyP(doublerVG{addNoise: true}, 0, ScanT(tbl), true))
		if err != nil {
			t.Fatal(err)
		}
		out := got.Rows()
		sortRows(out)
		return out
	}
	a, b := run(2), run(5)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Errorf("row %d differs across cluster sizes: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVGIterationsGetFreshRandomness(t *testing.T) {
	e := testEngine(1)
	tbl := makeTable("d", Schema{{"g", KindInt}, {"v", KindFloat}}, 1, false, T(1, 1))
	p := func() Plan { return VGApplyP(doublerVG{addNoise: true}, 0, ScanT(tbl), true) }
	a, err := e.Run("q1", p())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run("q2", p())
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows()[0][1] == b.Rows()[0][1] {
		t.Error("two VG invocations drew identical randomness")
	}
}

func TestWideOpsChargeMRJobLaunch(t *testing.T) {
	e := testEngine(2)
	tbl := makeTable("d", Schema{{"g", KindInt}, {"v", KindFloat}}, 2, true, T(1, 1), T(2, 2))
	before := e.Cluster().Now()
	if _, err := e.Run("q", GroupAggP(ScanT(tbl), []int{0}, []AggSpec{{Kind: AggSum, Col: 1, Name: "s"}})); err != nil {
		t.Fatal(err)
	}
	launch := e.Cluster().Config().Cost.MRJobLaunch
	if got := e.Cluster().Now() - before; got < launch {
		t.Errorf("group-by took %v, want at least the MR launch cost %v", got, launch)
	}
}

func TestNarrowOpsCheaperThanWideOps(t *testing.T) {
	e := testEngine(2)
	tbl := makeTable("d", Schema{{"g", KindInt}, {"v", KindFloat}}, 2, true, T(1, 1), T(2, 2))
	t0 := e.Cluster().Now()
	if _, err := e.Run("narrow", SelectP(ScanT(tbl), func(Tuple) bool { return true })); err != nil {
		t.Fatal(err)
	}
	narrow := e.Cluster().Now() - t0
	t1 := e.Cluster().Now()
	if _, err := e.Run("wide", GroupAggP(ScanT(tbl), []int{0}, []AggSpec{{Kind: AggSum, Col: 1, Name: "s"}})); err != nil {
		t.Fatal(err)
	}
	wide := e.Cluster().Now() - t1
	if narrow >= wide {
		t.Errorf("narrow (%v) should be cheaper than wide (%v)", narrow, wide)
	}
}

func TestChainVersioning(t *testing.T) {
	e := testEngine(2)
	ch := NewChain(e)
	data := makeTable("data", Schema{{"id", KindInt}, {"v", KindFloat}}, 2, true,
		T(1, 1), T(2, 2), T(3, 3))
	ch.SetBase("data", data)
	// state[0] = total of data.
	err := ch.Init("state", AsModelP(GroupAggP(
		ProjectP(ScanT(data), Schema{{"one", KindInt}, {"v", KindFloat}}, func(tu Tuple) Tuple {
			return T(0, tu.Float(1))
		}),
		[]int{0}, []AggSpec{{Kind: AggSum, Col: 1, Name: "total"}})))
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.Table("state").Rows()[0][1]; got != 6 {
		t.Fatalf("state[0] = %v, want 6", got)
	}
	// state[i] = state[i-1] total + 1.
	step := []Update{{
		Name: "state",
		Build: func(prev func(string) *Table) Plan {
			return ProjectP(ScanT(prev("state")), prev("state").Schema, func(tu Tuple) Tuple {
				return T(tu.Float(0), tu.Float(1)+1)
			})
		},
	}}
	for i := 0; i < 3; i++ {
		if err := ch.Step(step); err != nil {
			t.Fatal(err)
		}
	}
	if ch.Iteration() != 3 {
		t.Errorf("Iteration = %d", ch.Iteration())
	}
	if got := ch.Table("state").Rows()[0][1]; got != 9 {
		t.Errorf("state[3] = %v, want 9", got)
	}
}

func TestChainTablePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChain(testEngine(1)).Table("nope")
}

func TestKeyRefHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		k := keyOf(T(float64(i)), []int{0})
		seen[k.hash()%8] = true
	}
	if len(seen) < 6 {
		t.Errorf("sequential keys landed on only %d of 8 partitions", len(seen))
	}
}

func TestKeyLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	keyOf(T(1, 2, 3, 4, 5), []int{0, 1, 2, 3, 4})
}

func TestExpandAggP(t *testing.T) {
	e := testEngine(2)
	// Two rows, each expanding into 3 keyed contributions.
	tbl := makeTable("d", Floats("a", "b"), 2, true, T(1, 2), T(3, 4))
	p := ExpandAggP(ScanT(tbl),
		Schema{{Name: "k", Kind: relationalKindInt()}, {Name: "sum", Kind: KindFloat}},
		1, 3,
		func(tu Tuple, emit func(key Tuple, val float64)) {
			for k := 0; k < 3; k++ {
				emit(T(float64(k)), tu.Float(0)+tu.Float(1)+float64(k))
			}
		}, true)
	got, err := e.Run("q", p)
	if err != nil {
		t.Fatal(err)
	}
	rows := got.Rows()
	sortRows(rows)
	// key 0: (1+2+0)+(3+4+0)=10; key 1: 12; key 2: 14.
	want := []float64{10, 12, 14}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for i, w := range want {
		if rows[i][1] != w {
			t.Errorf("key %d sum = %v, want %v", i, rows[i][1], w)
		}
	}
}

// relationalKindInt avoids an unkeyed literal warning in the test above.
func relationalKindInt() Kind { return KindInt }

func TestExpandAggPPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExpandAggP(ScanT(NewTable("d", Floats("a"), 1)), Floats("x"), 1, 1, nil, true)
}

func TestChainStepSequential(t *testing.T) {
	e := testEngine(1)
	ch := NewChain(e)
	base := makeTable("v", Floats("x"), 1, false, T(1))
	ch.SetBase("a", base)
	if err := ch.Init("b", ScanT(base)); err != nil {
		t.Fatal(err)
	}
	// Sequential semantics: the second update sees the first's result
	// within the same sweep.
	updates := []Update{
		{Name: "b", Build: func(prev func(string) *Table) Plan {
			return ProjectP(ScanT(prev("b")), Floats("x"), func(tu Tuple) Tuple {
				return T(tu.Float(0) + 1)
			})
		}},
		{Name: "c", Build: func(prev func(string) *Table) Plan {
			return ProjectP(ScanT(prev("b")), Floats("x"), func(tu Tuple) Tuple {
				return T(tu.Float(0) * 10)
			})
		}},
	}
	if err := ch.StepSequential(updates); err != nil {
		t.Fatal(err)
	}
	// b became 2, and c saw the fresh b: 20.
	if got := ch.Table("c").Rows()[0].Float(0); got != 20 {
		t.Errorf("sequential c = %v, want 20 (fresh b)", got)
	}
	// Parallel semantics: c would have seen the stale b.
	ch2 := NewChain(testEngine(1))
	ch2.SetBase("a", base)
	if err := ch2.Init("b", ScanT(base)); err != nil {
		t.Fatal(err)
	}
	if err := ch2.Step(updates); err != nil {
		t.Fatal(err)
	}
	if got := ch2.Table("c").Rows()[0].Float(0); got != 10 {
		t.Errorf("parallel c = %v, want 10 (stale b)", got)
	}
}

func TestGroupAggGlobalGroup(t *testing.T) {
	// nil key columns form one global group (used by the simsqlchain
	// example).
	e := testEngine(2)
	tbl := makeTable("d", Floats("v"), 2, true, T(1), T(2), T(3))
	got, err := e.Run("q", AsModelP(GroupAggP(ScanT(tbl), nil,
		[]AggSpec{{Kind: AggSum, Col: 0, Name: "s"}, {Kind: AggCount, Name: "n"}})))
	if err != nil {
		t.Fatal(err)
	}
	rows := got.Rows()
	if len(rows) != 1 || rows[0][0] != 6 || rows[0][1] != 3 {
		t.Errorf("global group = %v", rows)
	}
}
