package relational

import (
	"math"
	"testing"

	"mlbench/internal/faults"
	"mlbench/internal/sim"
)

func faultEngine(machines int, sched *faults.Schedule) *Engine {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	cfg.Faults = sched
	return NewEngine(sim.New(cfg))
}

// spinPhases runs n identical compute phases through the engine's cluster.
func spinPhases(t *testing.T, e *Engine, n int, sec float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := e.c.RunPhaseF("mr-work", func(machine int, m *sim.Meter) error {
			m.ChargeSerialSec(sec)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestOnlyFailedTaskReruns(t *testing.T) {
	// Probe phase timing.
	probe := faultEngine(4, nil)
	spinPhases(t, probe, 10, 5)
	phaseSec := probe.c.Now() / 10

	// Crash in the 9th phase: recovery must re-run only the victim's
	// in-flight task (lost work + one task-attempt launch), NOT the eight
	// completed phases — MR jobs persist their outputs at every boundary.
	e := faultEngine(4, faults.NewSchedule(faults.CrashAt(2, 8.5*phaseSec)))
	spinPhases(t, e, 10, 5)
	log := e.c.Faults()
	if len(log) != 1 {
		t.Fatalf("observed %d faults, want 1", len(log))
	}
	f := log[0]
	cost := e.c.Config().Cost
	want := cost.FaultDetectSec + f.LostSec + cost.MRTaskRetrySec
	if math.Abs(f.RecoverySec-want) > 1e-9 {
		t.Errorf("RecoverySec = %v, want detect+lost+retry = %v", f.RecoverySec, want)
	}
	if f.RecoverySec > phaseSec+cost.FaultDetectSec+cost.MRTaskRetrySec {
		t.Errorf("MR recovery %v exceeds one phase of work %v", f.RecoverySec, phaseSec)
	}
	if e.Recoveries() != 1 {
		t.Errorf("Recoveries = %d, want 1", e.Recoveries())
	}
}

func TestSpeculativeExecutionCapsStragglers(t *testing.T) {
	// A 6x straggler under the engine's speculative execution costs at
	// most MRSpecExecCap times the normal phase.
	base := faultEngine(3, nil)
	spinPhases(t, base, 1, 10)
	clean := base.c.Now()

	strag := faultEngine(3, faults.NewSchedule(faults.StraggleAt(1, 0, 0, 6)))
	spinPhases(t, strag, 1, 10)
	cap := strag.c.Config().Cost.MRSpecExecCap
	if got := strag.c.Now(); got > clean*cap+1e-9 {
		t.Errorf("straggled phase %v exceeds speculative-execution cap %v x clean %v", got, cap, clean)
	}
	if strag.c.Now() <= clean {
		t.Error("straggler had no effect at all")
	}
}

func TestQueryResultsSurviveCrash(t *testing.T) {
	sched := faults.NewSchedule(faults.CrashAt(1, 0.5))
	e := faultEngine(3, sched)
	in := makeTable("r", Ints("k").Concat(Floats("v")), 3, true,
		T(1, 1.0), T(2, 2.0), T(1, 3.0), T(2, 4.0), T(3, 5.0))
	out, err := e.Run("agg", GroupAggP(ScanT(in), []int{0}, []AggSpec{{Kind: AggSum, Col: 1, Name: "s"}}))
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Rows()
	sortRows(rows)
	want := []Tuple{T(1, 4.0), T(2, 6.0), T(3, 5.0)}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if rows[i].Int(0) != want[i].Int(0) || rows[i].Float(1) != want[i].Float(1) {
			t.Fatalf("row %d = %v, want %v", i, rows[i], want[i])
		}
	}
	if len(e.c.Faults()) != 1 {
		t.Errorf("observed %d faults, want 1", len(e.c.Faults()))
	}
}
