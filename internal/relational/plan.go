package relational

import "fmt"

// Plan is a relational operator tree. Build plans with the constructor
// functions (ScanT, SelectP, ProjectP, HashJoinP, ArithJoinP, GroupAggP,
// VGApplyP, UnionAllP) and execute them with Engine.Run.
type Plan interface {
	// Schema returns the output schema.
	Schema() Schema
	// scaled reports whether the output cardinality is data-proportional.
	scaled() bool
	// run executes the subtree and materializes the output table.
	run(e *Engine) (*Table, error)
}

// scanNode reads an existing table.
type scanNode struct{ t *Table }

// ScanT scans a materialized table.
func ScanT(t *Table) Plan { return &scanNode{t: t} }

func (n *scanNode) Schema() Schema { return n.t.Schema }
func (n *scanNode) scaled() bool   { return n.t.Scaled }

// selectNode filters rows.
type selectNode struct {
	in   Plan
	pred func(Tuple) bool
}

// SelectP keeps rows for which pred is true.
func SelectP(in Plan, pred func(Tuple) bool) Plan { return &selectNode{in: in, pred: pred} }

func (n *selectNode) Schema() Schema { return n.in.Schema() }
func (n *selectNode) scaled() bool   { return n.in.scaled() }

// projectNode maps each row to a new row.
type projectNode struct {
	in  Plan
	out Schema
	fn  func(Tuple) Tuple
}

// ProjectP applies fn to every row, producing rows with schema out.
// It subsumes SQL projection and scalar expressions.
func ProjectP(in Plan, out Schema, fn func(Tuple) Tuple) Plan {
	return &projectNode{in: in, out: out, fn: fn}
}

func (n *projectNode) Schema() Schema { return n.out }
func (n *projectNode) scaled() bool   { return n.in.scaled() }

// flatNode maps each row to zero or more rows (used to unnest).
type flatNode struct {
	in  Plan
	out Schema
	fn  func(Tuple) []Tuple
}

// FlatMapP applies fn to every row and concatenates the results.
func FlatMapP(in Plan, out Schema, fn func(Tuple) []Tuple) Plan {
	return &flatNode{in: in, out: out, fn: fn}
}

func (n *flatNode) Schema() Schema { return n.out }
func (n *flatNode) scaled() bool   { return n.in.scaled() }

// unionNode concatenates two inputs with identical schemas.
type unionNode struct{ a, b Plan }

// UnionAllP concatenates the rows of a and b.
func UnionAllP(a, b Plan) Plan {
	if len(a.Schema()) != len(b.Schema()) {
		panic("relational: UnionAll schema width mismatch")
	}
	return &unionNode{a: a, b: b}
}

func (n *unionNode) Schema() Schema { return n.a.Schema() }
func (n *unionNode) scaled() bool   { return n.a.scaled() || n.b.scaled() }

// hashJoinNode is an equi-join executed as a repartition join.
type hashJoinNode struct {
	l, r         Plan
	lCols, rCols []int
}

// HashJoinP equi-joins l and r on l.lCols == r.rCols. This is the
// efficient path the SimSQL optimizer takes for plain column equality
// predicates.
func HashJoinP(l, r Plan, lCols, rCols []int) Plan {
	if len(lCols) != len(rCols) || len(lCols) == 0 {
		panic("relational: HashJoin needs matching, non-empty key lists")
	}
	return &hashJoinNode{l: l, r: r, lCols: lCols, rCols: rCols}
}

func (n *hashJoinNode) Schema() Schema { return n.l.Schema().Concat(n.r.Schema()) }
func (n *hashJoinNode) scaled() bool   { return n.l.scaled() || n.r.scaled() }

// arithJoinNode is the SimSQL optimizer quirk: a join whose predicate
// involves arithmetic (t1.curPos = t2.curPos + 1) is executed as a cross
// product with a post-filter.
type arithJoinNode struct {
	l, r Plan
	pred func(lt, rt Tuple) bool
}

// ArithJoinP joins l and r on an arbitrary predicate. The paper's SimSQL
// version could not recognize arithmetic equality predicates as
// equi-joins and fell back to a cross product; this operator reproduces
// that plan (the word-based HMM's motivation for storing nextPos).
func ArithJoinP(l, r Plan, pred func(lt, rt Tuple) bool) Plan {
	return &arithJoinNode{l: l, r: r, pred: pred}
}

func (n *arithJoinNode) Schema() Schema { return n.l.Schema().Concat(n.r.Schema()) }
func (n *arithJoinNode) scaled() bool   { return n.l.scaled() || n.r.scaled() }

// AggKind selects an aggregation function.
type AggKind uint8

const (
	// AggSum sums the column.
	AggSum AggKind = iota
	// AggCount counts rows (the column index is ignored).
	AggCount
	// AggAvg averages the column.
	AggAvg
	// AggMin takes the minimum.
	AggMin
	// AggMax takes the maximum.
	AggMax
)

// AggSpec is one aggregate output column. If Expr is non-nil it is
// evaluated per row instead of reading Col (a computed aggregate such as
// SUM(d1.val * d2.val)).
type AggSpec struct {
	Kind AggKind
	Col  int
	Name string
	Expr func(Tuple) float64
}

// groupAggNode is a hash-partitioned GROUP BY with map-side combine.
type groupAggNode struct {
	in      Plan
	keyCols []int
	aggs    []AggSpec
	model   bool
}

// GroupAggP groups in by keyCols and computes aggs per group. Call
// AsModelP on the result plan when the group cardinality is model-sized.
func GroupAggP(in Plan, keyCols []int, aggs []AggSpec) Plan {
	if len(aggs) == 0 {
		panic("relational: GroupAgg needs at least one aggregate")
	}
	return &groupAggNode{in: in, keyCols: keyCols, aggs: aggs}
}

func (n *groupAggNode) Schema() Schema {
	out := make(Schema, 0, len(n.keyCols)+len(n.aggs))
	in := n.in.Schema()
	for _, c := range n.keyCols {
		out = append(out, in[c])
	}
	for _, a := range n.aggs {
		out = append(out, Col{Name: a.Name, Kind: KindFloat})
	}
	return out
}
func (n *groupAggNode) scaled() bool { return !n.model && n.in.scaled() }

// modelNode marks its input's cardinality as model-proportional.
type modelNode struct{ in Plan }

// AsModelP marks the plan's output cardinality as model-proportional so
// downstream costs are not multiplied by the scale factor (use for
// aggregates keyed by cluster/state/topic ids).
func AsModelP(in Plan) Plan { return &modelNode{in: in} }

func (n *modelNode) Schema() Schema { return n.in.Schema() }
func (n *modelNode) scaled() bool   { return false }

// expandAggNode is a GROUP BY over a per-row expansion fused into the
// combiner: each input row generates many (key, value) contributions that
// are folded directly into the aggregation state without materializing
// the expanded relation (SimSQL pipelines pure expansions into the
// combiner — the only way its Gram-matrix query, one group per matrix
// entry over N x P^2 generated rows, finishes at all).
type expandAggNode struct {
	in       Plan
	out      Schema
	keyWidth int
	fanout   int // expansion cardinality per input row (for charging)
	expand   func(t Tuple, emit func(key Tuple, val float64))
	model    bool
}

// ExpandAggP builds an expand-and-aggregate: for every input row, expand
// calls emit zero or more times with a group key (keyWidth columns, at
// most 4) and a value; values are summed per key. fanout declares the
// per-row expansion cardinality used for cost charging. The output schema
// is out (keyWidth key columns plus one sum column). If model is true the
// output cardinality is model-proportional.
func ExpandAggP(in Plan, out Schema, keyWidth, fanout int, expand func(t Tuple, emit func(key Tuple, val float64)), model bool) Plan {
	if keyWidth < 1 || keyWidth > 4 || len(out) != keyWidth+1 {
		panic("relational: ExpandAggP needs 1-4 key columns and out = keys + 1 sum column")
	}
	return &expandAggNode{in: in, out: out, keyWidth: keyWidth, fanout: fanout, expand: expand, model: model}
}

func (n *expandAggNode) Schema() Schema { return n.out }
func (n *expandAggNode) scaled() bool   { return !n.model && n.in.scaled() }

// VG is a variable-generation function: SimSQL's randomized table-valued
// user-defined function, written (per the paper) in C++.
type VG interface {
	// Name identifies the function in traces.
	Name() string
	// OutSchema is the schema of the produced tuples.
	OutSchema() Schema
	// Apply consumes one parameter group and produces output tuples. It
	// runs under the C++ profile; implementations charge their own
	// numeric work through the meter.
	Apply(m VGMeter, params []Tuple) []Tuple
}

// vgApplyNode invokes a VG function once per parameter group.
type vgApplyNode struct {
	vg       VG
	groupCol int
	params   Plan
	model    bool
}

// VGApplyP shuffles params by groupCol and invokes vg once per distinct
// group value, concatenating the outputs. With groupCol < 0 the whole
// parameter table forms a single group (a single VG invocation).
// If model is true, the output is model-proportional.
func VGApplyP(vg VG, groupCol int, params Plan, model bool) Plan {
	return &vgApplyNode{vg: vg, groupCol: groupCol, params: params, model: model}
}

func (n *vgApplyNode) Schema() Schema { return n.vg.OutSchema() }
func (n *vgApplyNode) scaled() bool   { return !n.model && n.params.scaled() }

func describe(p Plan) string {
	switch n := p.(type) {
	case *scanNode:
		return "scan " + n.t.Name
	case *selectNode:
		return "select"
	case *projectNode:
		return "project"
	case *flatNode:
		return "flatmap"
	case *unionNode:
		return "union"
	case *hashJoinNode:
		return "hashjoin"
	case *arithJoinNode:
		return "crossjoin"
	case *groupAggNode:
		return "groupagg"
	case *expandAggNode:
		return "expandagg"
	case *vgApplyNode:
		return "vg " + n.vg.Name()
	case *modelNode:
		return describe(n.in)
	default:
		return fmt.Sprintf("%T", p)
	}
}
