package relational

import "fmt"

// Chain drives a SimSQL-style MCMC simulation expressed as mutually
// recursive random table definitions: table[0] comes from an
// initialization plan, and table[i] is defined by a plan over the
// version-(i-1) tables. Step executes one full sweep, building every
// update plan against the previous iteration's tables and swapping the
// new versions in together.
type Chain struct {
	eng    *Engine
	tables map[string]*Table
	iter   int
}

// NewChain creates an empty chain on the engine.
func NewChain(e *Engine) *Chain {
	return &Chain{eng: e, tables: make(map[string]*Table)}
}

// Engine returns the chain's engine.
func (c *Chain) Engine() *Engine { return c.eng }

// Iteration returns the number of completed Step calls.
func (c *Chain) Iteration() int { return c.iter }

// SetBase registers a deterministic (non-versioned) table, such as the
// data relation.
func (c *Chain) SetBase(name string, t *Table) { c.tables[name] = t }

// Init materializes version 0 of a random table.
func (c *Chain) Init(name string, p Plan) error {
	t, err := c.eng.Run(name, p)
	if err != nil {
		return fmt.Errorf("relational: init %s: %w", name, err)
	}
	c.tables[name] = t
	return nil
}

// Table returns the current version of a table. It panics if the name was
// never initialized, which is a programming error in the simulation.
func (c *Chain) Table(name string) *Table {
	t, ok := c.tables[name]
	if !ok {
		panic(fmt.Sprintf("relational: chain table %q not defined", name))
	}
	return t
}

// Update is one recursive table definition: Build constructs the
// version-i plan from the version-(i-1) tables.
type Update struct {
	Name  string
	Build func(prev func(string) *Table) Plan
}

// Step executes one sweep: every update's plan is built against the
// previous versions, executed in order, and the results replace the old
// versions together at the end (so updates within a sweep read iteration
// i-1 state, matching the paper's simulations which pass cmem[i-1] etc.).
func (c *Chain) Step(updates []Update) error {
	prev := func(name string) *Table { return c.Table(name) }
	next := make(map[string]*Table, len(updates))
	for _, u := range updates {
		t, err := c.eng.Run(u.Name, u.Build(prev))
		if err != nil {
			return fmt.Errorf("relational: step %d table %s: %w", c.iter+1, u.Name, err)
		}
		next[u.Name] = t
	}
	for name, t := range next {
		c.tables[name] = t
	}
	c.iter++
	return nil
}

// StepSequential is like Step but each update immediately replaces the
// table it defines, so later updates in the same sweep observe it (the
// Gibbs "use the freshest value" ordering some of the paper's codes use).
func (c *Chain) StepSequential(updates []Update) error {
	prev := func(name string) *Table { return c.Table(name) }
	for _, u := range updates {
		t, err := c.eng.Run(u.Name, u.Build(prev))
		if err != nil {
			return fmt.Errorf("relational: step %d table %s: %w", c.iter+1, u.Name, err)
		}
		c.tables[u.Name] = t
	}
	c.iter++
	return nil
}
