package relational

import (
	"mlbench/internal/ordmap"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
)

// Engine executes plans on a simulated cluster, charging SimSQL-style
// costs: one Hadoop MapReduce job per wide operator (join, group,
// VG apply), per-tuple engine overhead under the SQL profile, disk-spilled
// intermediates between jobs, and shuffle traffic. Reduce-side state
// spills to disk rather than being memory-capped, matching the paper's
// observation that SimSQL was the one platform that never failed.
type Engine struct {
	c    *sim.Cluster
	root *randgen.RNG
	seq  uint64 // distinguishes VG invocations across queries/iterations
	// recoveries counts MapReduce task re-executions after machine crashes
	// (see recover.go).
	recoveries int
}

// NewEngine creates an engine on the cluster. The engine owns crash
// recovery for its cluster — MapReduce task re-execution — and enables
// speculative execution, which caps straggler slowdown (recover.go).
func NewEngine(c *sim.Cluster) *Engine {
	e := &Engine{c: c, root: randgen.New(c.Config().Seed ^ 0x51351c1)}
	c.SetFaultHandler(e.handleFault)
	c.SetStragglerCap(c.Config().Cost.MRSpecExecCap)
	c.SetEngineLabel("simsql")
	return e
}

// Cluster returns the underlying simulated cluster.
func (e *Engine) Cluster() *sim.Cluster { return e.c }

// Run executes the plan and returns the materialized result table.
func (e *Engine) Run(name string, p Plan) (*Table, error) {
	t, err := p.run(e)
	if err != nil {
		return nil, err
	}
	t.Name = name
	return t, nil
}

// machines returns the cluster's machine count.
func (e *Engine) machines() int { return e.c.NumMachines() }

// chargeRows charges per-tuple engine cost for n rows of a table with the
// given scaling.
func chargeRows(m *sim.Meter, n int, scaled bool) {
	if scaled {
		m.ChargeTuples(n)
	} else {
		m.ChargeTuplesAbs(float64(n))
	}
}

// chargeCombine charges rows absorbed by the engine's tight map-side
// combining loop.
func chargeCombine(m *sim.Meter, c *sim.Cluster, rows float64, scaled bool) {
	if scaled {
		rows *= c.Scale()
	}
	m.ChargeSec(rows * c.Config().Cost.SQLCombineSec)
}

// countShuffle records the logical shuffle volume of one map task — rows
// repartitioned and their paper-scale bytes — in the trace metrics
// registry (no cost; SendData/SendModel already charged the network).
func countShuffle(m *sim.Meter, rows int, width int, scaled bool) {
	if rows == 0 {
		return
	}
	r := float64(rows)
	bytes := r * float64(tupleBytes(width))
	if scaled {
		r *= m.Scale()
		bytes *= m.Scale()
	}
	m.Count("shuffle_rows", r)
	m.Count("shuffle_bytes", bytes)
}

// chargeDisk charges streaming n rows of the given width to/from local
// disk (Hadoop intermediates).
func chargeDisk(m *sim.Meter, c *sim.Cluster, rows int, width int, scaled bool) {
	bytes := float64(rows) * float64(tupleBytes(width))
	if scaled {
		bytes *= c.Scale()
	}
	m.ChargeSec(bytes / c.Config().Cost.DiskBytesPerSec)
}

// narrowPhase runs a per-partition transformation with per-tuple costs
// (pipelined: no job launch, no disk spill).
func (e *Engine) narrowPhase(name string, in *Table, outSchema Schema, scaled bool, fn func(Tuple, *[]Tuple)) (*Table, error) {
	out := NewTable(name, outSchema, e.machines())
	out.Scaled = scaled
	err := e.c.RunPhaseF(name, func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		chargeRows(m, in.PartLen(machine), in.Scaled)
		var res []Tuple
		in.EachRow(machine, func(t Tuple) {
			fn(t, &res)
		})
		chargeRows(m, len(res), scaled)
		out.Parts[machine] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (n *scanNode) run(e *Engine) (*Table, error) { return n.t, nil }

func (n *selectNode) run(e *Engine) (*Table, error) {
	in, err := n.in.run(e)
	if err != nil {
		return nil, err
	}
	return e.narrowPhase("select", in, n.Schema(), n.scaled(), func(t Tuple, out *[]Tuple) {
		if n.pred(t) {
			*out = append(*out, t)
		}
	})
}

func (n *projectNode) run(e *Engine) (*Table, error) {
	in, err := n.in.run(e)
	if err != nil {
		return nil, err
	}
	return e.narrowPhase("project", in, n.out, n.scaled(), func(t Tuple, out *[]Tuple) {
		*out = append(*out, n.fn(t))
	})
}

func (n *flatNode) run(e *Engine) (*Table, error) {
	in, err := n.in.run(e)
	if err != nil {
		return nil, err
	}
	return e.narrowPhase("flatmap", in, n.out, n.scaled(), func(t Tuple, out *[]Tuple) {
		*out = append(*out, n.fn(t)...)
	})
}

func (n *unionNode) run(e *Engine) (*Table, error) {
	a, err := n.a.run(e)
	if err != nil {
		return nil, err
	}
	b, err := n.b.run(e)
	if err != nil {
		return nil, err
	}
	out := NewTable("union", n.Schema(), e.machines())
	out.Scaled = n.scaled()
	for i := range out.Parts {
		out.Parts[i] = append(append([]Tuple{}, a.PartRows(i)...), b.PartRows(i)...)
	}
	// Union is free: it is a logical concatenation of HDFS files.
	return out, nil
}

func (n *modelNode) run(e *Engine) (*Table, error) {
	t, err := n.in.run(e)
	if err != nil {
		return nil, err
	}
	out := *t
	out.Scaled = false
	return &out, nil
}

// repartition shuffles a table by key hash, charging map-side read, disk
// spill, and network. It returns per-machine row groups. Each map task
// partitions into task-local buckets; the shared output groups are
// assembled in the Merge hooks, in machine order, so row order within a
// destination group is machine-major and worker-count-independent.
func (e *Engine) repartition(name string, in *Table, keyCols []int) ([][]Tuple, error) {
	parts := make([][]Tuple, e.machines())
	// Buckets are sparse (insertion-ordered maps, so the merge below stays
	// deterministic): a map task touches only the destinations its rows
	// hash to, which keeps the per-task footprint proportional to its row
	// count rather than to the cluster size — at 10,000 machines a dense
	// bucket array per task would cost O(machines^2) slice headers.
	locals := make([]*ordmap.Map[int, []Tuple], e.machines())
	width := len(in.Schema)
	err := e.c.RunPhaseFM(name, func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		n := in.PartLen(machine)
		chargeRows(m, n, in.Scaled)
		chargeDisk(m, e.c, n, width, in.Scaled) // read input from HDFS
		local := ordmap.New[int, []Tuple]()
		in.EachRow(machine, func(t Tuple) {
			dst := int(keyOf(t, keyCols).hash() % uint64(e.machines()))
			bytes := float64(tupleBytes(width))
			if in.Scaled {
				m.SendData(dst, bytes)
			} else {
				m.SendModel(dst, bytes)
			}
			ts, _ := local.Get(dst)
			local.Set(dst, append(ts, t))
		})
		countShuffle(m, n, width, in.Scaled)
		chargeDisk(m, e.c, n, width, in.Scaled) // write map output
		locals[machine] = local
		return nil
	}, func(machine int, m *sim.Meter) error {
		locals[machine].Each(func(dst int, ts []Tuple) {
			parts[dst] = append(parts[dst], ts...)
		})
		return nil
	})
	return parts, err
}

func (n *hashJoinNode) run(e *Engine) (*Table, error) {
	l, err := n.l.run(e)
	if err != nil {
		return nil, err
	}
	r, err := n.r.run(e)
	if err != nil {
		return nil, err
	}
	e.c.AdvanceNamed("mr-job-launch", e.c.Config().Cost.MRJobLaunch)
	lParts, err := e.repartition("join-shuffle-left", l, n.lCols)
	if err != nil {
		return nil, err
	}
	rParts, err := e.repartition("join-shuffle-right", r, n.rCols)
	if err != nil {
		return nil, err
	}
	out := NewTable("join", n.Schema(), e.machines())
	out.Scaled = n.scaled()
	err = e.c.RunPhaseF("join-reduce", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		build := ordmap.New[keyRef, []Tuple]()
		for _, t := range lParts[machine] {
			k := keyOf(t, n.lCols)
			old, _ := build.Get(k)
			build.Set(k, append(old, t))
		}
		chargeRows(m, len(lParts[machine]), l.Scaled)
		// Build side streams through a disk-backed sort in Hadoop.
		chargeDisk(m, e.c, len(lParts[machine]), len(l.Schema), l.Scaled)
		var res []Tuple
		for _, t := range rParts[machine] {
			k := keyOf(t, n.rCols)
			if matches, ok := build.Get(k); ok {
				for _, lt := range matches {
					joined := make(Tuple, 0, len(lt)+len(t))
					joined = append(joined, lt...)
					joined = append(joined, t...)
					res = append(res, joined)
				}
			}
		}
		chargeRows(m, len(rParts[machine]), r.Scaled)
		chargeRows(m, len(res), out.Scaled)
		chargeDisk(m, e.c, len(res), len(out.Schema), out.Scaled) // write output
		out.Parts[machine] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (n *arithJoinNode) run(e *Engine) (*Table, error) {
	l, err := n.l.run(e)
	if err != nil {
		return nil, err
	}
	r, err := n.r.run(e)
	if err != nil {
		return nil, err
	}
	e.c.AdvanceNamed("mr-job-launch", e.c.Config().Cost.MRJobLaunch)
	// Cross product: the full right side is replicated to every machine,
	// then every (left, right) pair is evaluated. This is the quirk plan;
	// its cost is quadratic in paper-scale cardinality.
	rAll := r.Rows()
	out := NewTable("crossjoin", n.Schema(), e.machines())
	out.Scaled = n.scaled()
	scale := e.c.Scale()
	err = e.c.RunPhaseF("crossjoin", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		// Pair evaluations at paper scale: (|L| x S_l) x (|R| x S_r).
		pairs := float64(l.PartLen(machine)) * float64(len(rAll))
		if l.Scaled {
			pairs *= scale
		}
		if r.Scaled {
			pairs *= scale
		}
		m.ChargeTuplesAbs(pairs)
		var res []Tuple
		l.EachRow(machine, func(lt Tuple) {
			for _, rt := range rAll {
				if n.pred(lt, rt) {
					joined := make(Tuple, 0, len(lt)+len(rt))
					joined = append(joined, lt...)
					joined = append(joined, rt...)
					res = append(res, joined)
				}
			}
		})
		chargeRows(m, len(res), out.Scaled)
		chargeDisk(m, e.c, len(res), len(out.Schema), out.Scaled)
		out.Parts[machine] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Replication traffic: every machine receives the whole right side.
	err = e.c.RunPhase("crossjoin-bcast", []sim.Task{{Machine: 0, Run: func(m *sim.Meter) error {
		rBytes := float64(len(rAll)) * float64(tupleBytes(len(r.Schema)))
		for i := 1; i < e.machines(); i++ {
			if r.Scaled {
				m.SendData(i, rBytes)
			} else {
				m.SendModel(i, rBytes)
			}
		}
		return nil
	}}})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// aggState is the running state of one group's aggregates.
type aggState struct {
	count float64
	sums  []float64
	mins  []float64
	maxs  []float64
	key   Tuple
}

func newAggState(key Tuple, nAggs int) *aggState {
	s := &aggState{key: key, sums: make([]float64, nAggs), mins: make([]float64, nAggs), maxs: make([]float64, nAggs)}
	for i := range s.mins {
		s.mins[i] = 1e308
		s.maxs[i] = -1e308
	}
	return s
}

func (s *aggState) absorb(t Tuple, aggs []AggSpec) {
	s.count++
	for i, a := range aggs {
		if a.Kind == AggCount {
			continue
		}
		v := 0.0
		if a.Expr != nil {
			v = a.Expr(t)
		} else {
			v = t[a.Col]
		}
		switch a.Kind {
		case AggSum, AggAvg:
			s.sums[i] += v
		case AggMin:
			if v < s.mins[i] {
				s.mins[i] = v
			}
		case AggMax:
			if v > s.maxs[i] {
				s.maxs[i] = v
			}
		}
	}
}

func (s *aggState) merge(o *aggState, aggs []AggSpec) {
	s.count += o.count
	for i, a := range aggs {
		switch a.Kind {
		case AggSum, AggAvg:
			s.sums[i] += o.sums[i]
		case AggMin:
			if o.mins[i] < s.mins[i] {
				s.mins[i] = o.mins[i]
			}
		case AggMax:
			if o.maxs[i] > s.maxs[i] {
				s.maxs[i] = o.maxs[i]
			}
		}
	}
}

func (s *aggState) finish(aggs []AggSpec) Tuple {
	out := make(Tuple, 0, len(s.key)+len(aggs))
	out = append(out, s.key...)
	for i, a := range aggs {
		switch a.Kind {
		case AggSum:
			out = append(out, s.sums[i])
		case AggCount:
			out = append(out, s.count)
		case AggAvg:
			out = append(out, s.sums[i]/s.count)
		case AggMin:
			out = append(out, s.mins[i])
		case AggMax:
			out = append(out, s.maxs[i])
		}
	}
	return out
}

func (n *groupAggNode) run(e *Engine) (*Table, error) {
	in, err := n.in.run(e)
	if err != nil {
		return nil, err
	}
	e.c.AdvanceNamed("mr-job-launch", e.c.Config().Cost.MRJobLaunch)
	width := len(in.Schema)
	// Map side with combining: one partial aggregate per (machine, group).
	// Partials route to their reducers in the Merge hooks, in machine
	// order, keeping the shared per-destination lists deterministic under
	// host parallelism.
	partials := make([][]*aggState, e.machines()) // indexed by destination
	localAggs := make([]*ordmap.Map[keyRef, *aggState], e.machines())
	err = e.c.RunPhaseFM("group-map", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		nRows := in.PartLen(machine)
		// GROUP BY absorbs its input through the tight combiner loop.
		chargeCombine(m, e.c, float64(nRows), in.Scaled)
		chargeDisk(m, e.c, nRows, width, in.Scaled)
		local := ordmap.New[keyRef, *aggState]()
		in.EachRow(machine, func(t Tuple) {
			k := keyOf(t, n.keyCols)
			st := local.GetOrInsert(k, func() *aggState {
				key := make(Tuple, len(n.keyCols))
				for i, c := range n.keyCols {
					key[i] = t[c]
				}
				return newAggState(key, len(n.aggs))
			})
			st.absorb(t, n.aggs)
		})
		// One partial per group ships to its reducer. Whether those
		// partials are data- or model-proportional depends on the group
		// cardinality, which AsModelP declares.
		outWidth := len(n.Schema())
		local.Each(func(k keyRef, st *aggState) {
			dst := int(k.hash() % uint64(e.machines()))
			bytes := float64(tupleBytes(outWidth))
			if n.scaled() {
				m.SendData(dst, bytes)
			} else {
				m.SendModel(dst, bytes)
			}
		})
		countShuffle(m, local.Len(), outWidth, n.scaled())
		chargeRows(m, local.Len(), n.scaled())
		localAggs[machine] = local
		return nil
	}, func(machine int, m *sim.Meter) error {
		localAggs[machine].Each(func(k keyRef, st *aggState) {
			dst := int(k.hash() % uint64(e.machines()))
			partials[dst] = append(partials[dst], st)
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := NewTable("groupagg", n.Schema(), e.machines())
	out.Scaled = n.scaled()
	err = e.c.RunPhaseF("group-reduce", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		merged := ordmap.New[keyRef, *aggState]()
		for _, st := range partials[machine] {
			k := keyOf(st.key, identityCols(len(st.key)))
			if prev, ok := merged.Get(k); ok {
				prev.merge(st, n.aggs)
			} else {
				merged.Set(k, st)
			}
		}
		chargeRows(m, len(partials[machine]), n.scaled())
		var res []Tuple
		merged.Each(func(_ keyRef, st *aggState) {
			res = append(res, st.finish(n.aggs))
		})
		chargeRows(m, len(res), n.scaled())
		chargeDisk(m, e.c, len(res), len(out.Schema), n.scaled())
		out.Parts[machine] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (n *expandAggNode) run(e *Engine) (*Table, error) {
	in, err := n.in.run(e)
	if err != nil {
		return nil, err
	}
	e.c.AdvanceNamed("mr-job-launch", e.c.Config().Cost.MRJobLaunch)
	// Map side: expand each row straight into a local sum map (the fused
	// combiner); generated rows are charged at the combiner rate only.
	partials := make([]*ordmap.Map[keyRef, Tuple], e.machines())
	for i := range partials {
		partials[i] = ordmap.New[keyRef, Tuple]()
	}
	localMaps := make([]*ordmap.Map[keyRef, Tuple], e.machines())
	err = e.c.RunPhaseFM("expandagg-map", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		nRows := in.PartLen(machine)
		chargeRows(m, nRows, in.Scaled)
		chargeDisk(m, e.c, nRows, len(in.Schema), in.Scaled)
		chargeCombine(m, e.c, float64(nRows)*float64(n.fanout), in.Scaled)
		local := ordmap.New[keyRef, Tuple]()
		in.EachRow(machine, func(t Tuple) {
			n.expand(t, func(key Tuple, val float64) {
				k := keyOf(key, identityCols(len(key)))
				if prev, ok := local.Get(k); ok {
					prev[len(prev)-1] += val
				} else {
					row := make(Tuple, 0, len(key)+1)
					row = append(row, key...)
					row = append(row, val)
					local.Set(k, row)
				}
			})
		})
		// Ship one partial per group to its reducer.
		outWidth := len(n.out)
		local.Each(func(k keyRef, row Tuple) {
			dst := int(k.hash() % uint64(e.machines()))
			bytes := float64(tupleBytes(outWidth))
			if n.scaled() {
				m.SendData(dst, bytes)
			} else {
				m.SendModel(dst, bytes)
			}
		})
		countShuffle(m, local.Len(), outWidth, n.scaled())
		chargeRows(m, local.Len(), n.scaled())
		localMaps[machine] = local
		return nil
	}, func(machine int, m *sim.Meter) error {
		// Fold this machine's partials into the shared reducer maps, in
		// machine order (the cross-machine float additions happen here).
		localMaps[machine].Each(func(k keyRef, row Tuple) {
			dst := int(k.hash() % uint64(e.machines()))
			partials[dst].Merge(k, row, func(old, new Tuple) Tuple {
				old[len(old)-1] += new[len(new)-1]
				return old
			})
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := NewTable("expandagg", n.out, e.machines())
	out.Scaled = n.scaled()
	err = e.c.RunPhaseF("expandagg-reduce", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		var res []Tuple
		partials[machine].Each(func(_ keyRef, row Tuple) { res = append(res, row) })
		chargeRows(m, len(res), n.scaled())
		chargeDisk(m, e.c, len(res), len(out.Schema), n.scaled())
		out.Parts[machine] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// identityCols returns [0, 1, ..., n-1].
func identityCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// VGMeter is the charging interface handed to VG function
// implementations. VG functions run in C++ per the paper, so numeric work
// is charged under the C++ profile; the scaled flag tracks whether each
// invocation stands for Scale invocations at paper scale.
type VGMeter struct {
	m      *sim.Meter
	rng    *randgen.RNG
	scaled bool
}

// RNG returns the deterministic stream for this VG invocation.
func (v VGMeter) RNG() *randgen.RNG { return v.rng }

// ChargeOps charges calls linear-algebra operations of flopsPerCall flops
// at the given dimension.
func (v VGMeter) ChargeOps(calls int, flopsPerCall float64, dim int) {
	if v.scaled {
		v.m.ChargeLinalg(calls, flopsPerCall, dim)
	} else {
		v.m.ChargeLinalgAbs(calls, flopsPerCall, dim)
	}
}

// ChargeOpsData charges data-proportional linear-algebra work regardless
// of the parameter table's scaling — used by super-vertex VG functions
// whose parameter rows are model-cardinality but whose internal loops
// touch every data point.
func (v VGMeter) ChargeOpsData(calls int, flopsPerCall float64, dim int) {
	v.m.ChargeLinalg(calls, flopsPerCall, dim)
}

// ChargeRowsData charges data-proportional per-tuple engine work (e.g. a
// super-vertex VG emitting per-point tuples).
func (v VGMeter) ChargeRowsData(rows int) { v.m.ChargeTuples(rows) }

func (n *vgApplyNode) run(e *Engine) (*Table, error) {
	params, err := n.params.run(e)
	if err != nil {
		return nil, err
	}
	e.c.AdvanceNamed("mr-job-launch", e.c.Config().Cost.MRJobLaunch)
	e.seq++
	seq := e.seq

	var groups [][]Tuple // per machine: rows grouped contiguously
	if n.groupCol >= 0 {
		groups, err = e.repartition("vg-shuffle", params, []int{n.groupCol})
	} else {
		// Single invocation: all parameters to machine 0.
		groups = make([][]Tuple, e.machines())
		groups[0] = params.Rows()
		err = e.c.RunPhaseF("vg-gather", func(machine int, m *sim.Meter) error {
			m.SetProfile(sim.ProfileSQLEngine)
			n := params.PartLen(machine)
			chargeRows(m, n, params.Scaled)
			bytes := float64(n) * float64(tupleBytes(len(params.Schema)))
			if params.Scaled {
				m.SendData(0, bytes)
			} else {
				m.SendModel(0, bytes)
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}

	out := NewTable("vg:"+n.vg.Name(), n.Schema(), e.machines())
	out.Scaled = n.scaled()
	err = e.c.RunPhaseF("vg-apply "+n.vg.Name(), func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileSQLEngine)
		rows := groups[machine]
		chargeRows(m, len(rows), params.Scaled)
		// Regroup rows by the group column (ordered, deterministic).
		byGroup := ordmap.New[uint64, []Tuple]()
		if n.groupCol >= 0 {
			for _, t := range rows {
				k := keyOf(t, []int{n.groupCol}).hash()
				old, _ := byGroup.Get(k)
				byGroup.Set(k, append(old, t))
			}
		} else if len(rows) > 0 {
			byGroup.Set(0, rows)
		}
		var res []Tuple
		// VG functions are C++ (per the paper); their numeric work is
		// charged under the C++ profile, while tuple movement stays on
		// the engine's SQL profile.
		m.SetProfile(sim.ProfileCPP)
		byGroup.Each(func(gk uint64, group []Tuple) {
			rng := e.root.Split(seq).Split(gk)
			vm := VGMeter{m: m, rng: rng, scaled: params.Scaled}
			res = append(res, n.vg.Apply(vm, group)...)
		})
		m.SetProfile(sim.ProfileSQLEngine)
		// Output tuples are written, then re-sorted by the recursive
		// random-table versioning machinery (two more passes).
		chargeRows(m, 3*len(res), out.Scaled)
		chargeDisk(m, e.c, 3*len(res), len(out.Schema), out.Scaled)
		out.Parts[machine] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
