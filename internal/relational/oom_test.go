package relational

import (
	"testing"

	"mlbench/internal/sim"
)

func TestRelationalStreamsInsteadOfOOM(t *testing.T) {
	// The paper's SimSQL runs were slow but never died: MapReduce streams
	// every operator through sort-and-spill, so a data volume far beyond
	// RAM must still complete (the other engines OOM under the same
	// budget — see their oom tests).
	cfg := sim.DefaultConfig(2)
	cfg.Scale = 1_000_000
	cfg.MemBytes = 1 << 20 // 1 MB: orders of magnitude below the scaled data
	e := NewEngine(sim.New(cfg))
	in := makeTable("r", Ints("k").Concat(Floats("v")), 2, true,
		T(1, 1.0), T(2, 2.0), T(1, 3.0))
	out, err := e.Run("agg", GroupAggP(ScanT(in), []int{0}, []AggSpec{{Kind: AggSum, Col: 1, Name: "s"}}))
	if err != nil {
		t.Fatalf("relational engine must stream, not OOM: %v", err)
	}
	if got := len(out.Rows()); got != 2 {
		t.Errorf("groups = %d, want 2", got)
	}
}
