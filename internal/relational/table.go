// Package relational implements a SimSQL-like distributed relational
// engine on the simulated cluster: partitioned tables, tuple-at-a-time
// operators (select, project, hash join, cross-product join, group-by
// aggregation, union), randomized table-valued VG functions, and a
// versioned-table driver for expressing MCMC simulations as mutually
// recursive table definitions.
//
// The engine reproduces the SimSQL behaviours the paper's evaluation turns
// on: everything is a tuple (a 1,000 x 1,000 matrix is a million tuples —
// the Bayesian Lasso Gram-matrix pain), every wide operator is a Hadoop
// MapReduce job with tens of seconds of launch overhead and disk-spilled
// intermediates (the long initialization times), per-tuple engine cost
// under the SQL profile, and the optimizer quirk that turns arithmetic
// equality join predicates into cross products (the HMM nextPos
// workaround). On the positive side, the engine streams between jobs via
// disk rather than buffering in memory, which is why SimSQL is the one
// platform in the paper that never runs out of memory.
package relational

import (
	"fmt"
	"math"
)

// Kind describes the logical type of a column. Values are stored as
// float64 either way (integers remain exact up to 2^53); Kind documents
// intent and drives formatting.
type Kind uint8

const (
	// KindInt marks an integer-valued column (ids, counts).
	KindInt Kind = iota
	// KindFloat marks a real-valued column.
	KindFloat
)

// Col is one column of a schema.
type Col struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Col

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Ints is a convenience constructor for an all-integer schema.
func Ints(names ...string) Schema {
	s := make(Schema, len(names))
	for i, n := range names {
		s[i] = Col{Name: n, Kind: KindInt}
	}
	return s
}

// Floats is a convenience constructor for an all-float schema.
func Floats(names ...string) Schema {
	s := make(Schema, len(names))
	for i, n := range names {
		s[i] = Col{Name: n, Kind: KindFloat}
	}
	return s
}

// Concat returns s followed by t (join output schema).
func (s Schema) Concat(t Schema) Schema {
	out := make(Schema, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// Tuple is one row: a flat vector of float64 storage cells.
type Tuple []float64

// Int reads column i as an integer.
func (t Tuple) Int(i int) int64 { return int64(t[i]) }

// Float reads column i as a float.
func (t Tuple) Float(i int) float64 { return t[i] }

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// T builds a tuple from values.
func T(vals ...float64) Tuple { return Tuple(vals) }

// tupleBytes is the simulated wire/disk size of a tuple: 8 bytes per cell
// plus fixed record overhead (headers, keys).
func tupleBytes(width int) int64 { return int64(8*width) + 16 }

// Table is a named, schema-carrying relation partitioned across the
// cluster's machines. A base table may be generator-backed: Gen streams
// a partition's rows on demand instead of holding them in Parts, so a
// scan-side pass over a paper-scale relation never materializes it (the
// SimSQL-faithful behaviour — base tables live in HDFS and stream
// through map tasks). Operator outputs are always materialized (they
// model disk-spilled intermediates). Readers go through PartLen/EachRow
// so both representations behave identically.
type Table struct {
	Name   string
	Schema Schema
	Parts  [][]Tuple
	// Gen, when non-nil, streams partition part's rows through yield in
	// deterministic row order; Parts is ignored for such tables. The
	// generator must be pure: repeated walks yield the same rows.
	Gen func(part int, yield func(Tuple))
	// GenRows holds the per-partition row counts of a generator-backed
	// table (len == number of partitions).
	GenRows []int
	// Scaled marks data-proportional cardinality: costs for scaled tables
	// are multiplied by the cluster's scale factor. Model-sized tables
	// (one row per cluster/state/topic) are unscaled.
	Scaled bool
}

// NewTable creates an empty table with one partition per machine.
func NewTable(name string, schema Schema, machines int) *Table {
	return &Table{Name: name, Schema: schema, Parts: make([][]Tuple, machines)}
}

// NumParts returns the partition count.
func (t *Table) NumParts() int {
	if t.Gen != nil {
		return len(t.GenRows)
	}
	return len(t.Parts)
}

// PartLen returns partition part's row count.
func (t *Table) PartLen(part int) int {
	if t.Gen != nil {
		return t.GenRows[part]
	}
	return len(t.Parts[part])
}

// EachRow streams partition part's rows through fn in row order.
func (t *Table) EachRow(part int, fn func(Tuple)) {
	if t.Gen != nil {
		t.Gen(part, fn)
		return
	}
	for _, row := range t.Parts[part] {
		fn(row)
	}
}

// PartRows returns partition part as a slice, materializing a
// generator-backed partition.
func (t *Table) PartRows(part int) []Tuple {
	if t.Gen == nil {
		return t.Parts[part]
	}
	out := make([]Tuple, 0, t.GenRows[part])
	t.Gen(part, func(row Tuple) { out = append(out, row) })
	return out
}

// NumRows returns the total row count.
func (t *Table) NumRows() int {
	n := 0
	for p := 0; p < t.NumParts(); p++ {
		n += t.PartLen(p)
	}
	return n
}

// Rows returns all rows in partition order (for tests and small results),
// materializing generator-backed partitions.
func (t *Table) Rows() []Tuple {
	out := make([]Tuple, 0, t.NumRows())
	for p := 0; p < t.NumParts(); p++ {
		t.EachRow(p, func(row Tuple) { out = append(out, row) })
	}
	return out
}

// bytes returns the simulated byte size of one partition.
func partitionBytes(rows []Tuple, width int) int64 {
	return int64(len(rows)) * tupleBytes(width)
}

// keyRef is a comparable join/group key of up to four columns.
type keyRef struct {
	n uint8
	v [4]uint64
}

func keyOf(t Tuple, cols []int) keyRef {
	if len(cols) > 4 {
		panic(fmt.Sprintf("relational: keys limited to 4 columns, got %d", len(cols)))
	}
	var k keyRef
	k.n = uint8(len(cols))
	for i, c := range cols {
		k.v[i] = math.Float64bits(t[c])
	}
	return k
}

func (k keyRef) hash() uint64 {
	h := uint64(1469598103934665603)
	for i := uint8(0); i < k.n; i++ {
		h ^= k.v[i]
		h *= 1099511628211
	}
	// Final avalanche so sequential integer keys spread across partitions.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
