package bsp

import (
	"testing"

	"mlbench/internal/faults"
	"mlbench/internal/sim"
)

func faultGraph(machines int, sched *faults.Schedule, ckptEvery int) *Graph {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	cfg.Faults = sched
	cfg.Recovery.BSPCheckpointEvery = ckptEvery
	g := NewGraph(sim.New(cfg))
	for i := 0; i < 40; i++ {
		g.AddVertex(VertexID(i), 0.0, 1<<20, true, i%machines)
	}
	return g
}

// spin runs n supersteps in which every vertex does fixed work.
func spin(t *testing.T, g *Graph, n int) {
	t.Helper()
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
			ctx.Meter().ChargeLinalg(1, 1000, 10)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// rollbackSec injects one crash during superstep `at` of n and returns the
// recovery time charged.
func rollbackSec(t *testing.T, n, crashStep, ckptEvery int) float64 {
	t.Helper()
	// Probe a clean run to learn superstep timing.
	probe := faultGraph(4, nil, ckptEvery)
	spin(t, probe, n)
	stepSec := probe.c.Now() / float64(n)

	g := faultGraph(4, faults.NewSchedule(faults.CrashAt(2, (float64(crashStep)+0.5)*stepSec)), ckptEvery)
	spin(t, g, n)
	log := g.c.Faults()
	if len(log) != 1 {
		t.Fatalf("observed %d faults, want 1", len(log))
	}
	return log[0].RecoverySec
}

func TestRollbackGrowsWithSuperstepsSinceCheckpoint(t *testing.T) {
	early := rollbackSec(t, 12, 2, 0)
	late := rollbackSec(t, 12, 10, 0)
	if late <= early {
		t.Errorf("rollback did not grow with supersteps replayed: step 2 = %v, step 10 = %v", early, late)
	}
}

func TestCheckpointBoundsRollback(t *testing.T) {
	un := rollbackSec(t, 12, 10, 0)
	ck := rollbackSec(t, 12, 10, 3)
	if ck >= un {
		t.Errorf("checkpointing did not bound rollback: uncheckpointed = %v, every-3 = %v", un, ck)
	}
}

func TestCheckpointingCostsSteadyStateTime(t *testing.T) {
	plain := faultGraph(4, nil, 0)
	spin(t, plain, 10)
	ckpt := faultGraph(4, nil, 2)
	spin(t, ckpt, 10)
	if ckpt.c.Now() <= plain.c.Now() {
		t.Errorf("checkpoint writes are free: with = %v, without = %v", ckpt.c.Now(), plain.c.Now())
	}
}

func TestRollbackWithoutCheckpointReplaysFromLoad(t *testing.T) {
	// A crash in a late superstep with no checkpointing must cost at least
	// the whole computation so far (reload + full replay).
	g := faultGraph(4, nil, 0)
	spin(t, g, 8)
	clean := g.c.Now()

	stepSec := clean / 8
	crashed := faultGraph(4, faults.NewSchedule(faults.CrashAt(1, 7.5*stepSec)), 0)
	spin(t, crashed, 8)
	rec := crashed.c.Faults()[0].RecoverySec
	if rec < 0.8*clean {
		t.Errorf("full restart too cheap: recovery %v vs clean run %v", rec, clean)
	}
}
