package bsp

import (
	"testing"
	"testing/quick"

	"mlbench/internal/sim"
)

func testCluster(machines int) *sim.Cluster {
	cfg := sim.DefaultConfig(machines)
	cfg.Scale = 10
	return sim.New(cfg)
}

func TestMessageDeliveryNextSuperstep(t *testing.T) {
	g := NewGraph(testCluster(2))
	g.AddVertex(1, 0.0, 8, false, 0)
	g.AddVertex(2, 0.0, 8, false, 1)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	// Step 0: vertex 1 sends 5.0 to vertex 2.
	err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if len(msgs) != 0 {
			t.Errorf("superstep 0 delivered %d messages", len(msgs))
		}
		if v.ID == 1 {
			ctx.Send(2, 5.0, 8)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.PendingMessages() != 1 {
		t.Fatalf("pending = %d", g.PendingMessages())
	}
	// Step 1: vertex 2 receives it.
	var got []float64
	err = g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if v.ID == 2 {
			for _, m := range msgs {
				got = append(got, m.Data.(float64))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 5.0 {
		t.Errorf("vertex 2 received %v", got)
	}
	if g.Superstep() != 2 {
		t.Errorf("Superstep = %d", g.Superstep())
	}
}

func TestMultipleMessagesWithoutCombiner(t *testing.T) {
	g := NewGraph(testCluster(2))
	g.AddVertex(0, nil, 8, false, 0)
	for i := 1; i <= 5; i++ {
		g.AddVertex(VertexID(i), nil, 8, false, -1)
	}
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if v.ID != 0 {
			ctx.Send(0, float64(v.ID), 8)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var sum float64
	var count int
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if v.ID == 0 {
			count = len(msgs)
			for _, m := range msgs {
				sum += m.Data.(float64)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 || sum != 15 {
		t.Errorf("received %d messages summing %v", count, sum)
	}
}

func TestCombinerReducesMessages(t *testing.T) {
	g := NewGraph(testCluster(1)) // single machine: all sends share a source
	g.SetCombiner(func(a, b Msg) Msg {
		return Msg{Data: a.Data.(float64) + b.Data.(float64), Bytes: a.Bytes}
	})
	g.AddVertex(0, nil, 8, false, 0)
	for i := 1; i <= 5; i++ {
		g.AddVertex(VertexID(i), nil, 8, false, 0)
	}
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if v.ID != 0 {
			ctx.Send(0, float64(v.ID), 8)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var got []float64
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if v.ID == 0 {
			for _, m := range msgs {
				got = append(got, m.Data.(float64))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 15 {
		t.Errorf("combined messages = %v, want [15]", got)
	}
}

func TestAggregatorVisibleNextStep(t *testing.T) {
	g := NewGraph(testCluster(2))
	g.AddVertex(1, nil, 8, false, -1)
	g.AddVertex(2, nil, 8, false, -1)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		ctx.Aggregate("n", 1)
		if ctx.Agg("n") != 0 {
			t.Error("aggregate visible in same superstep")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if got := ctx.Agg("n"); got != 2 {
			t.Errorf("Agg(n) = %v, want 2", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScaledAggregation(t *testing.T) {
	g := NewGraph(testCluster(1)) // scale 10
	g.AddVertex(1, nil, 8, true, 0)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	_ = g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		ctx.Aggregate("n", 1)
		return nil
	})
	_ = g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if got := ctx.Agg("n"); got != 10 { // one real vertex = 10 paper vertices
			t.Errorf("scaled Agg = %v, want 10", got)
		}
		return nil
	})
}

func TestSharedValues(t *testing.T) {
	c := testCluster(3)
	g := NewGraph(c)
	g.AddVertex(0, nil, 8, false, 0)
	g.AddVertex(1, nil, 8, false, 1)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if v.ID == 0 {
			ctx.SetShared("model", "params-v1", 1000)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Each machine now holds one copy of the shared value.
	base := int64(2 * 8) // two model vertices
	if used := c.TotalMemUsed(); used != base+3*1000 {
		t.Errorf("shared residence = %d, want %d", used, base+3*1000)
	}
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if got := ctx.Shared("model"); got != "params-v1" {
			t.Errorf("Shared = %v", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestVoteToHaltAndReactivation(t *testing.T) {
	g := NewGraph(testCluster(1))
	g.AddVertex(1, nil, 8, false, 0)
	g.AddVertex(2, nil, 8, false, 0)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	runs := map[VertexID]int{}
	step := func(send bool) {
		_ = g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
			runs[v.ID]++
			if v.ID == 2 {
				ctx.VoteToHalt()
			}
			if v.ID == 1 && send {
				ctx.Send(2, 1.0, 8)
			}
			return nil
		})
	}
	step(false) // both run; 2 halts
	step(false) // only 1 runs
	if runs[2] != 1 {
		t.Errorf("halted vertex ran %d times, want 1", runs[2])
	}
	step(true)  // 1 sends to 2
	step(false) // 2 reactivated by message
	if runs[2] != 2 {
		t.Errorf("vertex 2 not reactivated: ran %d times", runs[2])
	}
}

func TestVertexLoadOOM(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.Scale = 1000
	cfg.MemBytes = 1 << 20
	g := NewGraph(sim.New(cfg))
	// 100 scaled word vertices x 200B x heap 4 x scale 1000 = 80 MB > 1 MB.
	for i := 0; i < 100; i++ {
		g.AddVertex(VertexID(i), nil, 200, true, 0)
	}
	if err := g.Load(); !sim.IsOOM(err) {
		t.Fatalf("expected load OOM, got %v", err)
	}
}

func TestInflightGrowsWithClusterSize(t *testing.T) {
	// The same per-machine traffic OOMs at a large cluster size but not a
	// small one: the paper's cluster-size-dependent Giraph failures.
	run := func(machines int) error {
		cfg := sim.DefaultConfig(machines)
		cfg.Scale = 1000
		cfg.MemBytes = 64 << 20 // 64 MB budget
		g := NewGraph(sim.New(cfg))
		// One model vertex per machine and 20 scaled data vertices per
		// machine; every data vertex receives a 2KB model message.
		for mc := 0; mc < machines; mc++ {
			g.AddVertex(VertexID(1_000_000+mc), nil, 64, false, mc)
			for i := 0; i < 20; i++ {
				g.AddVertex(VertexID(mc*1000+i), nil, 64, true, mc)
			}
		}
		if err := g.Load(); err != nil {
			return err
		}
		if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
			if v.ID >= 1_000_000 {
				mc := int(v.ID - 1_000_000)
				for i := 0; i < 20; i++ {
					ctx.Send(VertexID(mc*1000+i), nil, 2048)
				}
			}
			return nil
		}); err != nil {
			return err
		}
		return g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error { return nil })
	}
	// Per machine resident = 20 x 2KB x 1000 scale x 4 heap x f(M)
	//                      = 160 MB x f(M); f(5) ~ 0.04 -> 6.4MB fits,
	//                        f(100) ~ 0.45 -> 73MB > 64MB fails.
	if err := run(5); err != nil {
		t.Errorf("5 machines should fit: %v", err)
	}
	if err := run(100); !sim.IsOOM(err) {
		t.Errorf("100 machines should OOM, got %v", err)
	}
}

func TestSuperstepAdvancesClock(t *testing.T) {
	c := testCluster(2)
	g := NewGraph(c)
	g.AddVertex(1, nil, 8, false, -1)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	before := c.Now()
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if c.Now() <= before {
		t.Error("superstep did not advance clock")
	}
}

func TestSendToUnknownVertexPanics(t *testing.T) {
	g := NewGraph(testCluster(1))
	g.AddVertex(1, nil, 8, false, 0)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		ctx.Send(999, nil, 8)
		return nil
	})
}

func TestRunBeforeLoadFails(t *testing.T) {
	g := NewGraph(testCluster(1))
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error { return nil }); err == nil {
		t.Fatal("expected error before Load")
	}
}

func TestMessageBufferFreedAfterSuperstep(t *testing.T) {
	c := testCluster(1)
	g := NewGraph(c)
	g.AddVertex(1, nil, 8, false, 0)
	g.AddVertex(2, nil, 8, false, 0)
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	loaded := c.TotalMemUsed()
	_ = g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if v.ID == 1 {
			ctx.Send(2, nil, 1<<20)
		}
		return nil
	})
	_ = g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error { return nil })
	if used := c.TotalMemUsed(); used != loaded {
		t.Errorf("message buffers leaked: %d vs %d", used, loaded)
	}
}

// Property: every message sent in one superstep is delivered exactly once
// in the next (no loss, no duplication), for arbitrary send patterns.
func TestQuickMessageConservation(t *testing.T) {
	f := func(dests []uint8) bool {
		const nVerts = 8
		g := NewGraph(testCluster(2))
		for i := 0; i < nVerts; i++ {
			g.AddVertex(VertexID(i), nil, 8, false, -1)
		}
		if err := g.Load(); err != nil {
			return false
		}
		sent := map[VertexID]int{}
		if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
			if v.ID != 0 {
				return nil
			}
			for _, d := range dests {
				dst := VertexID(int(d) % nVerts)
				ctx.Send(dst, int(d), 8)
				sent[dst]++
			}
			return nil
		}); err != nil {
			return false
		}
		got := map[VertexID]int{}
		if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
			got[v.ID] += len(msgs)
			return nil
		}); err != nil {
			return false
		}
		for dst, n := range sent {
			if got[dst] != n {
				return false
			}
		}
		for dst, n := range got {
			if sent[dst] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
