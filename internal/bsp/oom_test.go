package bsp

import (
	"testing"

	"mlbench/internal/sim"
)

// The engine's two allocation sites must both surface simulated OOM as
// sim.OOMError through the public run path, like the paper's Giraph runs
// that died loading big vertices or buffering messages.

func TestLoadOOM(t *testing.T) {
	cfg := sim.DefaultConfig(2)
	cfg.Scale = 1000
	cfg.MemBytes = 4 << 20
	g := NewGraph(sim.New(cfg))
	for i := 0; i < 10; i++ {
		g.AddVertex(VertexID(i), nil, 1<<20, true, -1) // 1 MB x 1000 scale
	}
	if err := g.Load(); !sim.IsOOM(err) {
		t.Fatalf("expected load OOM, got %v", err)
	}
}

func TestMessageBufferOOM(t *testing.T) {
	cfg := sim.DefaultConfig(2)
	cfg.Scale = 10_000
	cfg.MemBytes = 4 << 20
	g := NewGraph(sim.New(cfg))
	g.AddVertex(0, nil, 8, false, 0)
	for i := 1; i <= 8; i++ {
		g.AddVertex(VertexID(i), nil, 8, true, -1)
	}
	if err := g.Load(); err != nil {
		t.Fatal(err)
	}
	if err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error {
		if v.ID != 0 {
			ctx.Send(0, float64(v.ID), 1<<10) // 1 KB x 10k scale per sender
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The buffers are resident in the delivering superstep.
	err := g.RunSuperstep(func(ctx *Context, v *Vertex, msgs []Msg) error { return nil })
	if !sim.IsOOM(err) {
		t.Fatalf("expected message-buffer OOM, got %v", err)
	}
}
