// Package bsp implements a Giraph-like bulk synchronous parallel engine on
// the simulated cluster: supersteps, per-vertex message delivery, optional
// sender-side combiners, master aggregators, and worker-shared values (the
// aggregator-based "broadcast" the paper's Giraph codes use to ship the
// model without recording edges).
//
// Memory model. Giraph runs in the JVM: buffered messages pay an
// object-overhead multiplier (CostModel.BSPHeapFactor); vertex state is
// charged at caller-declared sizes (which include boxing where the
// formulation boxes). Of a
// superstep's per-vertex message traffic, the fraction resident in
// receiver heaps simultaneously grows with cluster size
// (M / (M + BSPInflightHalfM)): with few peers flow control drains buffers
// quickly, while large clusters synchronize flushes across many peers and
// hold much more in flight. Together these reproduce the paper's Giraph
// behaviour: fast when it runs, but "memory was an issue on the largest
// problems" — failures at 100 machines (GMM, LDA, imputation), on
// 100-dimensional data, and on every word-granularity and non-super-vertex
// Lasso configuration.
package bsp

import (
	"fmt"

	"mlbench/internal/ordmap"
	"mlbench/internal/sim"
)

// VertexID identifies a vertex.
type VertexID int64

// Vertex is one BSP vertex: user state plus placement and accounting
// metadata.
type Vertex struct {
	ID   VertexID
	Data any
	// Bytes is the simulated size of the vertex state (before the JVM
	// heap factor).
	Bytes int64
	// Scaled marks data-proportional vertices.
	Scaled  bool
	machine int
	halted  bool
}

// Machine returns the machine hosting the vertex.
func (v *Vertex) Machine() int { return v.machine }

// Msg is one message: an opaque payload plus its simulated wire size.
type Msg struct {
	Data  any
	Bytes int64
}

// Combiner merges two messages bound for the same destination vertex from
// the same source machine (Giraph's sender-side combining).
type Combiner func(a, b Msg) Msg

// Compute is the per-vertex user function, run once per superstep for
// every active vertex. Messages sent in superstep i are delivered in
// superstep i+1.
type Compute func(ctx *Context, v *Vertex, msgs []Msg) error

// pending is a queued message with its simulated multiplicity applied.
type pending struct {
	msg      Msg
	simBytes float64
	src      int // source machine
}

// Graph is a BSP graph bound to a cluster.
type Graph struct {
	c        *sim.Cluster
	verts    *ordmap.Map[VertexID, *Vertex]
	byMach   [][]*Vertex
	combiner Combiner
	loaded   bool
	step     int

	// queue[dst vertex] = messages to deliver next superstep.
	queue *ordmap.Map[VertexID, []pending]
	// aggregates from the previous superstep (master-merged sums).
	aggPrev map[string]float64
	aggCur  map[string]float64
	// shared values (aggregator-broadcast model state).
	shared      map[string]any
	sharedBytes map[string]int64
	sharedAlloc int64 // per-machine resident bytes for shared values

	// Fault-recovery state (see recover.go): checkpoint every ckptEvery
	// supersteps; a crash rolls the whole cluster back to the last
	// checkpoint (or a reload) and replays the supersteps since.
	ckptEvery      int
	loadSec        float64   // measured graph-load time (restart basis)
	stepSecs       []float64 // superstep durations since last checkpoint
	ckptRestoreSec float64
	haveCkpt       bool
}

// NewGraph creates an empty BSP graph on the cluster. The graph owns crash
// recovery for its cluster: checkpoint rollback and superstep replay
// (recover.go), with the checkpoint interval initialized from the cluster
// config's Recovery.BSPCheckpointEvery.
func NewGraph(c *sim.Cluster) *Graph {
	g := &Graph{
		c:           c,
		verts:       ordmap.New[VertexID, *Vertex](),
		byMach:      make([][]*Vertex, c.NumMachines()),
		queue:       ordmap.New[VertexID, []pending](),
		aggPrev:     map[string]float64{},
		aggCur:      map[string]float64{},
		shared:      map[string]any{},
		sharedBytes: map[string]int64{},
		ckptEvery:   c.Config().Recovery.BSPCheckpointEvery,
	}
	c.SetFaultHandler(g.handleFault)
	c.SetEngineLabel("giraph")
	return g
}

// SetCombiner installs a sender-side message combiner.
func (g *Graph) SetCombiner(c Combiner) { g.combiner = c }

// Superstep returns the number of completed supersteps.
func (g *Graph) Superstep() int { return g.step }

// AddVertex inserts a vertex, placed by id hash unless machine >= 0.
func (g *Graph) AddVertex(id VertexID, data any, bytes int64, scaled bool, machine int) *Vertex {
	if g.loaded {
		panic("bsp: AddVertex after Load")
	}
	if machine < 0 {
		machine = int(uint64(id*2654435761) % uint64(len(g.byMach)))
	}
	v := &Vertex{ID: id, Data: data, Bytes: bytes, Scaled: scaled, machine: machine}
	g.verts.Set(id, v)
	g.byMach[machine] = append(g.byMach[machine], v)
	return v
}

// Vertex returns the vertex with the given id, or nil.
func (g *Graph) Vertex(id VertexID) *Vertex {
	v, _ := g.verts.Get(id)
	return v
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.verts.Len() }

// Load finalizes the graph, charging vertex state (with the JVM heap
// factor) against machine memory.
func (g *Graph) Load() error {
	if g.loaded {
		return nil
	}
	t0, rec0 := g.c.Now(), recoveredSec(g.c)
	err := g.c.RunPhaseF("bsp-load", func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileJava)
		for _, v := range g.byMach[machine] {
			// Vertex state is charged as given: callers size their
			// vertices with JVM boxing included where it applies (the
			// heap factor covers message buffers, which the engine owns).
			bytes := v.Bytes
			if v.Scaled {
				m.ChargeTuples(1)
				if err := m.AllocData(bytes, "bsp vertex"); err != nil {
					return err
				}
			} else {
				m.ChargeTuplesAbs(1)
				if err := m.AllocModel(bytes, "bsp vertex"); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	g.loaded = true
	g.loadSec = (g.c.Now() - t0) - (recoveredSec(g.c) - rec0)
	return nil
}

// Context is the per-vertex compute environment.
type Context struct {
	g     *Graph
	meter *sim.Meter
	v     *Vertex
	// staged sends from this machine, combined per destination.
	stage *ordmap.Map[VertexID, pending]
	// agg buffers this machine's aggregator contributions; machines may
	// compute concurrently, so the global sums are merged at the barrier
	// in machine order.
	agg *ordmap.Map[string, float64]
	// shared buffers this machine's SetShared publications, applied at the
	// barrier in machine order (last machine wins, as under sequential
	// execution).
	shared *ordmap.Map[string, sharedVal]
}

// sharedVal is one staged worker-shared publication.
type sharedVal struct {
	value any
	bytes int64
}

// Meter exposes the task meter for user-code cost charging.
func (ctx *Context) Meter() *sim.Meter { return ctx.meter }

// Superstep returns the current superstep index (0-based).
func (ctx *Context) Superstep() int { return ctx.g.step }

// NumMachines returns the cluster size.
func (ctx *Context) NumMachines() int { return ctx.g.c.NumMachines() }

// Send enqueues a message for delivery to dst in the next superstep.
// bytes is the wire size of the payload. The simulated multiplicity is
// the cluster scale factor when either endpoint is data-proportional.
func (ctx *Context) Send(dst VertexID, data any, bytes int64) {
	dstV := ctx.g.Vertex(dst)
	if dstV == nil {
		panic(fmt.Sprintf("bsp: send to unknown vertex %d", dst))
	}
	mult := 1.0
	if ctx.v.Scaled || dstV.Scaled {
		mult = ctx.g.c.Scale()
	}
	msg := Msg{Data: data, Bytes: bytes}
	p := pending{msg: msg, simBytes: float64(bytes) * mult, src: ctx.v.machine}
	if ctx.g.combiner != nil {
		if prev, ok := ctx.stage.Get(dst); ok && prev.src == p.src {
			// Combining collapses the sender-side multiplicity (all of a
			// machine's paper-scale messages to this destination become
			// one), but a scaled destination still stands for Scale
			// paper vertices that each receive their own copy.
			combined := ctx.g.combiner(prev.msg, msg)
			dstMult := 1.0
			if dstV.Scaled {
				dstMult = ctx.g.c.Scale()
			}
			ctx.stage.Set(dst, pending{msg: combined, simBytes: float64(combined.Bytes) * dstMult, src: p.src})
			ctx.meter.ChargeTuplesAbs(mult) // combining work per original message
			return
		}
	}
	// Without a combiner every message is staged individually; with one,
	// the first message to a destination seeds the stage entry.
	if ctx.g.combiner != nil {
		ctx.stage.Set(dst, p)
	} else {
		key := dst
		if prev, ok := ctx.stage.Get(key); ok {
			// Chain uncombined messages via a list in Data.
			list, _ := prev.msg.Data.([]Msg)
			if list == nil {
				list = []Msg{prev.msg}
			}
			list = append(list, msg)
			ctx.stage.Set(key, pending{
				msg:      Msg{Data: list, Bytes: prev.msg.Bytes + bytes},
				simBytes: prev.simBytes + p.simBytes,
				src:      p.src,
			})
		} else {
			ctx.stage.Set(key, p)
		}
	}
	ctx.meter.ChargeTuplesAbs(mult)
}

// Aggregate adds v into the named global sum aggregator; the master-merged
// total is visible next superstep via Agg.
func (ctx *Context) Aggregate(name string, v float64) {
	mult := 1.0
	if ctx.v.Scaled {
		mult = ctx.g.c.Scale()
	}
	old, _ := ctx.agg.Get(name)
	ctx.agg.Set(name, old+v*mult)
	ctx.meter.ChargeTuplesAbs(mult)
}

// Agg returns the previous superstep's merged value of the named
// aggregator (0 if never set).
func (ctx *Context) Agg(name string) float64 { return ctx.g.aggPrev[name] }

// SetShared publishes a worker-shared value (the aggregator-based model
// "broadcast" of the paper's Giraph codes): after this superstep every
// machine holds one copy, charged against its memory.
func (ctx *Context) SetShared(name string, value any, bytes int64) {
	ctx.shared.Set(name, sharedVal{value: value, bytes: bytes})
}

// Shared returns a worker-shared value published in an earlier superstep.
func (ctx *Context) Shared(name string) any { return ctx.g.shared[name] }

// VoteToHalt marks the vertex inactive; an incoming message reactivates it.
func (ctx *Context) VoteToHalt() { ctx.v.halted = true }

// RunSuperstep delivers queued messages, runs compute on every active
// vertex, and stages the next round of messages. It returns the first
// error, typically a simulated OOM from message buffering.
func (g *Graph) RunSuperstep(compute Compute) error {
	if !g.loaded {
		return fmt.Errorf("bsp: RunSuperstep before Load")
	}
	cost := g.c.Config().Cost
	if g.ckptEvery > 0 && g.step > 0 && g.step%g.ckptEvery == 0 {
		if err := g.checkpoint(); err != nil {
			return err
		}
	}
	t0, rec0 := g.c.Now(), recoveredSec(g.c)
	g.c.AdvanceNamed("bsp-superstep-launch", cost.BSPSuperstep)
	machines := g.c.NumMachines()
	inflight := float64(machines) / (float64(machines) + cost.BSPInflightHalfM)

	// Group queued messages by destination machine and compute resident
	// buffer sizes.
	inbox := make([]*ordmap.Map[VertexID, []Msg], machines)
	resident := make([]float64, machines)
	for i := range inbox {
		inbox[i] = ordmap.New[VertexID, []Msg]()
	}
	g.queue.Each(func(dst VertexID, ps []pending) {
		v := g.Vertex(dst)
		msgs := make([]Msg, 0, len(ps))
		for _, p := range ps {
			if list, ok := p.msg.Data.([]Msg); ok {
				msgs = append(msgs, list...)
			} else {
				msgs = append(msgs, p.msg)
			}
			resident[v.machine] += p.simBytes
		}
		inbox[v.machine].Set(dst, msgs)
		v.halted = false // messages reactivate
	})
	g.queue = ordmap.New[VertexID, []pending]()

	// Rotate aggregators.
	g.aggPrev = g.aggCur
	g.aggCur = map[string]float64{}

	stages := make([]*ordmap.Map[VertexID, pending], machines)
	aggStages := make([]*ordmap.Map[string, float64], machines)
	sharedStages := make([]*ordmap.Map[string, sharedVal], machines)
	heap := cost.BSPHeapFactor
	err := g.c.RunPhaseF(fmt.Sprintf("bsp-superstep-%d", g.step), func(machine int, m *sim.Meter) error {
		m.SetProfile(sim.ProfileJava)
		// Resident message buffers: the in-flight fraction of this
		// machine's incoming traffic, with JVM overhead.
		buf := int64(resident[machine] * inflight * heap)
		if err := m.Machine().Alloc(buf, "bsp message buffers"); err != nil {
			return err
		}
		defer m.Machine().Free(buf)
		stage := ordmap.New[VertexID, pending]()
		stages[machine] = stage
		agg := ordmap.New[string, float64]()
		aggStages[machine] = agg
		shared := ordmap.New[string, sharedVal]()
		sharedStages[machine] = shared
		for _, v := range g.byMach[machine] {
			msgs, _ := inbox[machine].Get(v.ID)
			if v.halted && len(msgs) == 0 {
				continue
			}
			if v.Scaled {
				m.ChargeTuples(1 + len(msgs))
			} else {
				m.ChargeTuplesAbs(float64(1 + len(msgs)))
			}
			ctx := &Context{g: g, meter: m, v: v, stage: stage, agg: agg, shared: shared}
			if err := compute(ctx, v, msgs); err != nil {
				return err
			}
		}
		// Network for staged sends (combined volume).
		var msgCount, msgBytes float64
		stage.Each(func(dst VertexID, p pending) {
			dm := g.Vertex(dst).machine
			if dm != machine {
				m.SendModel(dm, p.simBytes)
				msgCount++
				msgBytes += p.simBytes
			}
		})
		if msgCount > 0 {
			m.Count("messages", msgCount)
			m.Count("message_bytes", msgBytes)
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Merge stages into the next queue, deterministically by machine.
	for _, stage := range stages {
		if stage == nil {
			continue
		}
		stage.Each(func(dst VertexID, p pending) {
			old, _ := g.queue.Get(dst)
			g.queue.Set(dst, append(old, p))
		})
	}
	// Merge aggregator and shared-value stages, in machine order.
	for _, a := range aggStages {
		if a == nil {
			continue
		}
		a.Each(func(name string, v float64) { g.aggCur[name] += v })
	}
	for _, s := range sharedStages {
		if s == nil {
			continue
		}
		s.Each(func(name string, sv sharedVal) {
			g.shared[name] = sv.value
			g.sharedBytes[name] = sv.bytes
		})
	}
	// Distribute shared values: one copy per machine.
	if err := g.settleShared(); err != nil {
		return err
	}
	// Record the superstep's duration (minus any recovery settled within
	// it) as rollback-replay basis.
	g.stepSecs = append(g.stepSecs, (g.c.Now()-t0)-(recoveredSec(g.c)-rec0))
	g.step++
	return nil
}

// settleShared charges the per-machine residence and distribution of
// worker-shared values.
func (g *Graph) settleShared() error {
	var total int64
	for _, b := range g.sharedBytes {
		total += b
	}
	if total == g.sharedAlloc {
		return nil
	}
	delta := total - g.sharedAlloc
	err := g.c.RunPhaseF("bsp-shared", func(machine int, m *sim.Meter) error {
		if delta > 0 {
			if machine > 0 {
				m.SendModel((machine+1)%g.c.NumMachines(), float64(delta))
			}
			return m.AllocModel(delta, "bsp shared values")
		}
		m.Machine().Free(-delta)
		return nil
	})
	if err != nil {
		return err
	}
	g.sharedAlloc = total
	return nil
}

// PendingMessages reports how many destination vertices have queued
// messages (for tests).
func (g *Graph) PendingMessages() int { return g.queue.Len() }
