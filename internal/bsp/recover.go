package bsp

import (
	"fmt"

	"mlbench/internal/sim"
)

// Fault recovery, the Giraph way: the graph optionally writes a replicated
// checkpoint of all vertex and shared state every k supersteps, and a
// machine crash rolls EVERY machine back to the last checkpoint — the BSP
// barrier couples the workers, so one lost worker costs the whole cluster
// the supersteps since the checkpoint (plus the restore). With
// checkpointing off — how the paper's Giraph deployment ran — recovery is
// a full restart: reload the graph and replay every superstep.

// SetCheckpointInterval sets the number of supersteps between checkpoint
// writes (0 disables checkpointing). The cluster's
// Recovery.BSPCheckpointEvery is the initial value.
func (g *Graph) SetCheckpointInterval(k int) { g.ckptEvery = k }

// recoveredSec sums the recovery time charged for faults observed so far,
// so superstep timings can exclude it.
func recoveredSec(c *sim.Cluster) float64 {
	var s float64
	for _, f := range c.Faults() {
		s += f.RecoverySec
	}
	return s
}

// checkpoint writes every machine's resident graph state to replicated
// storage: one local disk write, one copy shipped to a peer and written
// there (modelled as a second local-rate write).
func (g *Graph) checkpoint() error {
	c := g.c
	cost := c.Config().Cost
	start, rec0 := c.Now(), recoveredSec(c)
	err := c.RunPhaseF(fmt.Sprintf("bsp-checkpoint-%d", g.step), func(machine int, m *sim.Meter) error {
		bytes := g.machineStateBytes(machine)
		m.ChargeSec(2 * bytes / cost.DiskBytesPerSec)
		if c.NumMachines() > 1 {
			m.SendModel((machine+1)%c.NumMachines(), bytes)
		}
		m.Count("checkpoint_bytes", bytes)
		return nil
	})
	if err != nil {
		return err
	}
	g.haveCkpt = true
	// Restoring reads back what writing wrote, at about the same cost.
	g.ckptRestoreSec = (c.Now() - start) - (recoveredSec(c) - rec0)
	g.stepSecs = g.stepSecs[:0]
	return nil
}

// machineStateBytes is the simulated resident graph state on one machine:
// vertex state plus the worker-shared values.
func (g *Graph) machineStateBytes(machine int) float64 {
	bytes := float64(g.sharedAlloc)
	for _, v := range g.byMach[machine] {
		b := float64(v.Bytes)
		if v.Scaled {
			b *= g.c.Scale()
		}
		bytes += b
	}
	return bytes
}

// handleFault is the engine's sim.FaultHandler: global rollback to the
// last checkpoint (or a full reload when there is none) plus replay of
// every superstep run since.
func (g *Graph) handleFault(sim.FaultInfo) error {
	restore := g.loadSec
	if g.haveCkpt {
		restore = g.ckptRestoreSec
	}
	var replay float64
	for _, s := range g.stepSecs {
		replay += s
	}
	g.c.AdvanceNamed("bsp-rollback-restore", restore)
	g.c.AdvanceNamed("bsp-replay-supersteps", replay)
	return nil
}
