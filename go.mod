module mlbench

go 1.22
