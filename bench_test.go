// Package mlbench's root benchmark suite: one testing.B benchmark per
// table/figure of the paper's evaluation, plus ablation benches for the
// design choices the paper discusses (super vertices, combiners, caching,
// the SimSQL join quirk) and micro-benches for the platform engines.
//
// Each figure benchmark runs a reduced configuration of the same code the
// harness uses and reports the virtual per-iteration seconds as the
// "viter_s" metric — the quantity the paper's tables print. Run the full
// tables with `go run ./cmd/mlbench`.
package mlbench

import (
	"testing"

	"mlbench/internal/dataflow"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/gmmtask"
	"mlbench/internal/tasks/hmmtask"
	"mlbench/internal/tasks/imputetask"
	"mlbench/internal/tasks/lassotask"
	"mlbench/internal/tasks/ldatask"
	"mlbench/internal/tasks/mrftask"
	"mlbench/internal/tasks/task"
)

// benchCluster builds a small 5-machine cluster at a high scale-down so
// real work stays tiny.
func benchCluster(scale float64) *sim.Cluster {
	cfg := sim.DefaultConfig(5)
	cfg.Scale = scale
	return sim.New(cfg)
}

// reportRun reports the virtual times of a task run as benchmark metrics.
func reportRun(b *testing.B, res *task.Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.AvgIterSec(), "viter_s")
	b.ReportMetric(res.InitSec, "vinit_s")
}

// --- Figure 1: GMM ---

func BenchmarkFig1aGMMInitialSimSQL(b *testing.B) {
	cfg := gmmtask.Config{K: 5, D: 10, PointsPerMachine: 2_000_000, Iterations: 1}
	for i := 0; i < b.N; i++ {
		res, err := gmmtask.RunSimSQL(benchCluster(10_000), cfg)
		reportRun(b, res, err)
	}
}

func BenchmarkFig1aGMMInitialSparkPython(b *testing.B) {
	cfg := gmmtask.Config{K: 5, D: 10, PointsPerMachine: 2_000_000, Iterations: 1}
	for i := 0; i < b.N; i++ {
		res, err := gmmtask.RunSpark(benchCluster(10_000), cfg, sim.ProfilePython)
		reportRun(b, res, err)
	}
}

func BenchmarkFig1aGMMInitialGiraph(b *testing.B) {
	cfg := gmmtask.Config{K: 5, D: 10, PointsPerMachine: 2_000_000, Iterations: 1}
	for i := 0; i < b.N; i++ {
		res, err := gmmtask.RunGiraph(benchCluster(10_000), cfg)
		reportRun(b, res, err)
	}
}

func BenchmarkFig1bGMMSparkJava(b *testing.B) {
	cfg := gmmtask.Config{K: 5, D: 10, PointsPerMachine: 2_000_000, Iterations: 1}
	for i := 0; i < b.N; i++ {
		res, err := gmmtask.RunSpark(benchCluster(10_000), cfg, sim.ProfileJava)
		reportRun(b, res, err)
	}
}

func BenchmarkFig1bGMMGraphLabSuperVertex(b *testing.B) {
	cfg := gmmtask.Config{K: 5, D: 10, PointsPerMachine: 2_000_000, Iterations: 1, SuperVertex: true, SVPerMachine: 16}
	for i := 0; i < b.N; i++ {
		res, err := gmmtask.RunGraphLab(benchCluster(10_000), cfg)
		reportRun(b, res, err)
	}
}

func BenchmarkFig1cGMMSimSQLSuperVertex(b *testing.B) {
	cfg := gmmtask.Config{K: 5, D: 10, PointsPerMachine: 2_000_000, Iterations: 1, SuperVertex: true}
	for i := 0; i < b.N; i++ {
		res, err := gmmtask.RunSimSQL(benchCluster(10_000), cfg)
		reportRun(b, res, err)
	}
}

// --- Figure 2: Bayesian Lasso ---

func BenchmarkFig2LassoSimSQL(b *testing.B) {
	cfg := lassotask.Config{P: 200, PointsPerMachine: 100_000, Iterations: 1}
	for i := 0; i < b.N; i++ {
		res, err := lassotask.RunSimSQL(benchCluster(1000), cfg)
		reportRun(b, res, err)
	}
}

func BenchmarkFig2LassoGraphLab(b *testing.B) {
	cfg := lassotask.Config{P: 200, PointsPerMachine: 100_000, Iterations: 1}
	for i := 0; i < b.N; i++ {
		res, err := lassotask.RunGraphLab(benchCluster(1000), cfg)
		reportRun(b, res, err)
	}
}

func BenchmarkFig2LassoSpark(b *testing.B) {
	cfg := lassotask.Config{P: 200, PointsPerMachine: 100_000, Iterations: 1}
	for i := 0; i < b.N; i++ {
		res, err := lassotask.RunSpark(benchCluster(1000), cfg)
		reportRun(b, res, err)
	}
}

func BenchmarkFig2LassoGiraphSuperVertex(b *testing.B) {
	cfg := lassotask.Config{P: 200, PointsPerMachine: 100_000, Iterations: 1, SuperVertex: true}
	for i := 0; i < b.N; i++ {
		res, err := lassotask.RunGiraph(benchCluster(1000), cfg)
		reportRun(b, res, err)
	}
}

// --- Figure 3: HMM ---

func hmmBenchCfg() hmmtask.Config {
	return hmmtask.Config{K: 10, V: 2000, DocsPerMachine: 500_000, AvgDocLen: 100, Iterations: 1, SVPerMachine: 10}
}

func BenchmarkFig3aHMMWordSimSQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hmmtask.RunSimSQL(benchCluster(25_000), hmmBenchCfg(), hmmtask.VariantWord)
		reportRun(b, res, err)
	}
}

func BenchmarkFig3aHMMDocSimSQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hmmtask.RunSimSQL(benchCluster(25_000), hmmBenchCfg(), hmmtask.VariantDoc)
		reportRun(b, res, err)
	}
}

func BenchmarkFig3aHMMDocSpark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hmmtask.RunSpark(benchCluster(25_000), hmmBenchCfg(), hmmtask.VariantDoc)
		reportRun(b, res, err)
	}
}

func BenchmarkFig3aHMMDocGiraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hmmtask.RunGiraph(benchCluster(25_000), hmmBenchCfg(), hmmtask.VariantDoc)
		reportRun(b, res, err)
	}
}

func BenchmarkFig3bHMMSuperVertexGiraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hmmtask.RunGiraph(benchCluster(25_000), hmmBenchCfg(), hmmtask.VariantSV)
		reportRun(b, res, err)
	}
}

func BenchmarkFig3bHMMSuperVertexGraphLab(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hmmtask.RunGraphLab(benchCluster(25_000), hmmBenchCfg())
		reportRun(b, res, err)
	}
}

func BenchmarkFig3bHMMSuperVertexSimSQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hmmtask.RunSimSQL(benchCluster(25_000), hmmBenchCfg(), hmmtask.VariantSV)
		reportRun(b, res, err)
	}
}

// --- Figure 4: LDA ---

func ldaBenchCfg() ldatask.Config {
	return ldatask.Config{T: 20, V: 2000, DocsPerMachine: 500_000, AvgDocLen: 100, Iterations: 1, SVPerMachine: 10}
}

func BenchmarkFig4aLDAWordSimSQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ldatask.RunSimSQL(benchCluster(25_000), ldaBenchCfg(), ldatask.VariantWord)
		reportRun(b, res, err)
	}
}

func BenchmarkFig4aLDADocSimSQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ldatask.RunSimSQL(benchCluster(25_000), ldaBenchCfg(), ldatask.VariantDoc)
		reportRun(b, res, err)
	}
}

func BenchmarkFig4aLDADocGiraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ldatask.RunGiraph(benchCluster(25_000), ldaBenchCfg(), ldatask.VariantDoc)
		reportRun(b, res, err)
	}
}

func BenchmarkFig4bLDASuperVertexSimSQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ldatask.RunSimSQL(benchCluster(25_000), ldaBenchCfg(), ldatask.VariantSV)
		reportRun(b, res, err)
	}
}

func BenchmarkFig4bLDASuperVertexGiraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ldatask.RunGiraph(benchCluster(25_000), ldaBenchCfg(), ldatask.VariantSV)
		reportRun(b, res, err)
	}
}

// --- Figure 5: Gaussian imputation ---

func BenchmarkFig5ImputationSpark(b *testing.B) {
	cfg := imputetask.Config{K: 5, D: 8, PointsPerMachine: 2_000_000, Iterations: 1, SVPerMachine: 10}
	for i := 0; i < b.N; i++ {
		res, err := imputetask.RunSpark(benchCluster(10_000), cfg)
		reportRun(b, res, err)
	}
}

func BenchmarkFig5ImputationGraphLab(b *testing.B) {
	cfg := imputetask.Config{K: 5, D: 8, PointsPerMachine: 2_000_000, Iterations: 1, SVPerMachine: 10}
	for i := 0; i < b.N; i++ {
		res, err := imputetask.RunGraphLab(benchCluster(10_000), cfg)
		reportRun(b, res, err)
	}
}

func BenchmarkFig5ImputationSimSQL(b *testing.B) {
	cfg := imputetask.Config{K: 5, D: 8, PointsPerMachine: 2_000_000, Iterations: 1, SVPerMachine: 10}
	for i := 0; i < b.N; i++ {
		res, err := imputetask.RunSimSQL(benchCluster(10_000), cfg)
		reportRun(b, res, err)
	}
}

// --- Figure 6: Spark Java LDA ---

func BenchmarkFig6LDASparkJava(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ldatask.RunSpark(benchCluster(25_000), ldaBenchCfg(), ldatask.VariantSV, sim.ProfileJava)
		reportRun(b, res, err)
	}
}

// --- Ablations (design choices the paper's discussion calls out) ---

// BenchmarkAblationSuperVertex measures the super-vertex construction's
// effect on the SimSQL GMM (Section 5.6).
func BenchmarkAblationSuperVertex(b *testing.B) {
	for _, sv := range []bool{false, true} {
		name := "without"
		if sv {
			name = "with"
		}
		b.Run(name, func(b *testing.B) {
			cfg := gmmtask.Config{K: 5, D: 10, PointsPerMachine: 2_000_000, Iterations: 1, SuperVertex: sv}
			for i := 0; i < b.N; i++ {
				res, err := gmmtask.RunSimSQL(benchCluster(10_000), cfg)
				reportRun(b, res, err)
			}
		})
	}
}

// BenchmarkAblationJoinQuirk measures the SimSQL optimizer quirk: the
// word-based HMM's adjacency join as an equi-join (via the stored nextPos
// column) versus the cross-product fallback (Section 7.2).
func BenchmarkAblationJoinQuirk(b *testing.B) {
	small := hmmtask.Config{K: 4, V: 100, DocsPerMachine: 20_000, AvgDocLen: 20, Iterations: 1}
	for _, quirk := range []bool{false, true} {
		name := "equijoin"
		if quirk {
			name = "crossproduct"
		}
		b.Run(name, func(b *testing.B) {
			cfg := small
			cfg.UseArithJoinQuirk = quirk
			for i := 0; i < b.N; i++ {
				res, err := hmmtask.RunSimSQL(benchCluster(1000), cfg, hmmtask.VariantWord)
				reportRun(b, res, err)
			}
		})
	}
}

// BenchmarkAblationCacheChurn contrasts the GMM (stable cached data) with
// the imputation model (data rewritten per iteration) on Spark — the
// Figure 5 discussion.
func BenchmarkAblationCacheChurn(b *testing.B) {
	b.Run("gmm-stable-cache", func(b *testing.B) {
		cfg := gmmtask.Config{K: 5, D: 8, PointsPerMachine: 2_000_000, Iterations: 2}
		for i := 0; i < b.N; i++ {
			res, err := gmmtask.RunSpark(benchCluster(10_000), cfg, sim.ProfilePython)
			reportRun(b, res, err)
		}
	})
	b.Run("impute-churning-cache", func(b *testing.B) {
		cfg := imputetask.Config{K: 5, D: 8, PointsPerMachine: 2_000_000, Iterations: 2}
		for i := 0; i < b.N; i++ {
			res, err := imputetask.RunSpark(benchCluster(10_000), cfg)
			reportRun(b, res, err)
		}
	})
}

// --- Engine micro-benchmarks (real wall time of the simulation itself) ---

func BenchmarkEngineShuffle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := dataflow.NewContext(benchCluster(10), sim.ProfileCPP)
		data := dataflow.Generate(ctx, 8, func(int) int64 { return 8 },
			func(p int, r *randgen.RNG) []int {
				out := make([]int, 2000)
				for j := range out {
					out[j] = p*2000 + j
				}
				return out
			})
		pairs := dataflow.Map(data, func(dataflow.Pair[int, int]) int64 { return 16 },
			func(m *sim.Meter, x int) dataflow.Pair[int, int] {
				return dataflow.Pair[int, int]{K: x % 97, V: x}
			})
		red := dataflow.ReduceByKey(pairs, func(m *sim.Meter, a, c int) int { return a + c })
		if _, err := dataflow.Count(red); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineVirtualClockPhase(b *testing.B) {
	cl := benchCluster(10)
	for i := 0; i < b.N; i++ {
		_ = cl.RunPhaseF("noop", func(machine int, m *sim.Meter) error {
			m.ChargeSec(1)
			return nil
		})
	}
}

// BenchmarkAblationCombiners measures Giraph's combiner effect on the
// per-point GMM (Section 5.4: combiners "reduce communication and
// increase load balancing during aggregation"). Without combining, every
// per-point statistics message is buffered and shipped individually.
func BenchmarkAblationCombiners(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "with-combiner"
		if disabled {
			name = "without-combiner"
		}
		b.Run(name, func(b *testing.B) {
			cfg := gmmtask.Config{K: 5, D: 10, PointsPerMachine: 2_000_000, Iterations: 1, DisableCombiner: disabled}
			for i := 0; i < b.N; i++ {
				res, err := gmmtask.RunGiraph(benchCluster(10_000), cfg)
				reportRun(b, res, err)
			}
		})
	}
}

// --- Extension: sparse-graph MRF labeling (the paper's Section 10
// conjecture about graph-natural workloads) ---

func BenchmarkExtensionMRFGraphLab(b *testing.B) {
	cfg := mrftask.Config{RowsPerMachine: 10_000, Cols: 1000, Labels: 5, Iterations: 1}
	for i := 0; i < b.N; i++ {
		res, err := mrftask.RunGraphLab(benchCluster(100_000), cfg)
		reportRun(b, res, err)
	}
}

func BenchmarkExtensionMRFGiraph(b *testing.B) {
	cfg := mrftask.Config{RowsPerMachine: 10_000, Cols: 1000, Labels: 5, Iterations: 1}
	for i := 0; i < b.N; i++ {
		res, err := mrftask.RunGiraph(benchCluster(100_000), cfg)
		reportRun(b, res, err)
	}
}
