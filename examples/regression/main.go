// Bayesian Lasso: sweep the regularization strength on a sparse
// regression problem and watch the posterior shrink the noise
// coefficients, then time the GraphLab-style distributed implementation.
//
//	go run ./examples/regression
package main

import (
	"fmt"
	"log"

	"mlbench/internal/bench"
	"mlbench/internal/linalg"
	"mlbench/internal/models/lasso"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/lassotask"
	"mlbench/internal/workload"
)

func main() {
	rng := randgen.New(5)
	const (
		n = 800
		p = 40
	)
	data := workload.GenRegression(rng, workload.RegressionConfig{N: n, P: p, Sparsity: 4, Noise: 2})

	// Precompute the Gram matrix and X^T y, as every platform's
	// initialization does.
	xtx := linalg.NewMat(p, p)
	xty := linalg.NewVec(p)
	for i, x := range data.X {
		xtx.AddOuter(1, x, x)
		for j := range x {
			xty[j] += x[j] * data.Y[i]
		}
	}
	sse := func(beta linalg.Vec) float64 {
		var s float64
		for i, x := range data.X {
			r := data.Y[i] - x.Dot(beta)
			s += r * r
		}
		return s
	}

	fmt.Println("lambda    |beta| of 4 true signals    |beta| of 36 noise coefficients")
	for _, lambda := range []float64{0.1, 1, 10, 100} {
		h := lasso.Hyper{Lambda: lambda, P: p}
		st := lasso.Init(p)
		var sig, noise float64
		const burn, keep = 30, 30
		for iter := 0; iter < burn+keep; iter++ {
			lasso.SampleInvTau2(rng, h, st)
			if err := lasso.SampleBeta(rng, st, xtx, xty); err != nil {
				log.Fatal(err)
			}
			lasso.SampleSigma2(rng, st, n, sse(st.Beta))
			if iter >= burn {
				for j := range st.Beta {
					v := st.Beta[j]
					if v < 0 {
						v = -v
					}
					if data.TrueBeta[j] != 0 {
						sig += v
					} else {
						noise += v
					}
				}
			}
		}
		fmt.Printf("%6.1f    %8.3f                    %8.4f\n",
			lambda, sig/(keep*4), noise/(keep*36))
	}
	fmt.Println("\nLarger lambda shrinks the noise coefficients toward zero while")
	fmt.Println("the planted signals survive — the Lasso's selling point.")

	// The distributed version (the paper's Figure 2, GraphLab row).
	cfg := sim.DefaultConfig(5)
	cfg.Scale = 500
	cl := sim.New(cfg)
	res, err := lassotask.RunGraphLab(cl, lassotask.Config{
		P: 1000, PointsPerMachine: 100_000, Iterations: 3, Lambda: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGraphLab Bayesian Lasso, 5 virtual machines: init %s (paper: 0:37), %s per iteration (paper: 0:36)\n",
		bench.FormatDuration(res.InitSec), bench.FormatDuration(res.AvgIterSec()))
}
