// Quickstart: run one benchmark task on a simulated cluster and
// regenerate one cell of the paper's Figure 1.
//
//	go run ./examples/quickstart
//
// This is the five-minute tour: build a virtual 5-machine cluster
// (8 cores, 68 GB each — the paper's EC2 m2.4xlarge), run the Gaussian
// mixture model Gibbs sampler on the Spark-like dataflow engine, and
// print the virtual per-iteration time next to the paper's published
// number.
package main

import (
	"fmt"
	"log"

	"mlbench/internal/bench"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/gmmtask"
)

func main() {
	// A virtual cluster: 5 machines at a 10,000x data scale-down, so each
	// machine holds 1,000 real points standing in for the paper's 10M.
	cfg := sim.DefaultConfig(5)
	cfg.Scale = 10_000
	cl := sim.New(cfg)

	gmmCfg := gmmtask.Config{
		K:                10,
		D:                10,
		PointsPerMachine: 10_000_000, // paper scale
		Iterations:       3,
	}
	res, err := gmmtask.RunSpark(cl, gmmCfg, sim.ProfilePython)
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}

	fmt.Println("GMM on the Spark-like dataflow engine, 5 virtual machines")
	fmt.Printf("  initialization: %s   (paper: 4:10)\n", bench.FormatDuration(res.InitSec))
	fmt.Printf("  per iteration:  %s   (paper: 26:04)\n", bench.FormatDuration(res.AvgIterSec()))
	fmt.Printf("  model quality:  %.2f per-point log-likelihood\n", res.Metrics["loglike"])
	fmt.Println()
	fmt.Println("The same chain really ran: 3 Gibbs sweeps over 5,000 in-memory")
	fmt.Println("points, with every map, shuffle and collect charged to the")
	fmt.Println("virtual clock at paper scale.")
	fmt.Println()
	fmt.Println("Run the full evaluation with:  go run ./cmd/mlbench")
}
