// Topic modeling: learn the paper's non-collapsed LDA on a synthetic
// corpus with planted topics, watch the likelihood improve, and print
// each learned topic's favorite words.
//
//	go run ./examples/topicmodel
//
// The paper benchmarks the NON-collapsed Gibbs sampler on purpose: unlike
// the ubiquitous collapsed variant, its parallel updates are exactly
// correct. This example runs the same kernels the platform
// implementations use (internal/models/lda), then times the Giraph-style
// super-vertex implementation on a small virtual cluster.
package main

import (
	"fmt"
	"log"

	"mlbench/internal/bench"
	"mlbench/internal/models/lda"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/ldatask"
	"mlbench/internal/workload"
)

func main() {
	rng := randgen.New(7)
	const (
		topics = 4
		vocab  = 200
		nDocs  = 400
	)
	corpus := workload.GenCorpus(rng, workload.CorpusConfig{
		Docs: nDocs, Vocab: vocab, AvgLen: 80, Topics: topics,
	})

	h := lda.Hyper{T: topics, V: vocab, Alpha: 0.5, Beta: 0.1}
	model := lda.Init(rng, h)
	docs := make([]*lda.Doc, nDocs)
	for i, words := range corpus {
		docs[i] = lda.InitDoc(rng, words, h)
	}

	ll := func() float64 {
		var total float64
		words := 0
		for _, d := range docs {
			total += model.LogLikelihood(d)
			words += len(d.Words)
		}
		return total / float64(words)
	}
	fmt.Printf("per-word log-likelihood before training: %.3f\n", ll())
	for iter := 0; iter < 40; iter++ {
		counts := lda.NewWordCounts(topics, vocab)
		for _, d := range docs {
			model.ResampleZ(rng, d)
			d.ResampleTheta(rng, h)
			counts.Accumulate(d, 1)
		}
		model.UpdatePhi(rng, h, counts)
	}
	fmt.Printf("per-word log-likelihood after 40 sweeps:  %.3f\n\n", ll())

	for t := 0; t < topics; t++ {
		fmt.Printf("topic %d top words: %v\n", t, model.TopWords(t, 8))
	}

	// Now the distributed version: the same sampler as a Giraph
	// super-vertex code on a 5-machine virtual cluster.
	cfg := sim.DefaultConfig(5)
	cfg.Scale = 25_000
	cl := sim.New(cfg)
	res, err := ldatask.RunGiraph(cl, ldatask.Config{
		T: 100, V: 10_000, DocsPerMachine: 2_500_000, AvgDocLen: 210, Iterations: 2,
	}, ldatask.VariantSV)
	if err != nil {
		log.Fatalf("giraph lda: %v", err)
	}
	fmt.Printf("\nGiraph super-vertex LDA, 5 virtual machines: %s per iteration (paper: 18:49)\n",
		bench.FormatDuration(res.AvgIterSec()))
}
