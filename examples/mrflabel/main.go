// MRF labeling: the extension workload from the paper's closing
// discussion — "had we considered ... problems that map naturally to a
// graph (for example, labeling the nodes in a Markov random field where
// the model parameters are already known), the results might have been
// different."
//
//	go run ./examples/mrflabel
//
// A Potts-model Gibbs sampler denoises a blocky labeled grid, then the
// same chain runs per-vertex on the GraphLab-style and Giraph-style
// engines. On this sparse 4-neighbor graph the per-vertex GraphLab
// formulation — which fails on every one of the paper's five models —
// runs comfortably and beats Giraph, realizing the conjecture.
package main

import (
	"fmt"
	"log"

	"mlbench/internal/bench"
	"mlbench/internal/models/mrf"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/mrftask"
)

func main() {
	// Centralized: denoise a 96x96 grid.
	rng := randgen.New(21)
	g := mrf.Generate(rng, mrf.Config{Rows: 96, Cols: 96, Labels: 5, Beta: 1.5, NoiseP: 0.3})
	fmt.Printf("observation accuracy: %.3f\n", g.ObsAccuracy())
	for iter := 0; iter < 12; iter++ {
		g.SweepParity(rng, 0)
		g.SweepParity(rng, 1)
	}
	fmt.Printf("after 12 Gibbs sweeps: %.3f\n\n", g.Accuracy())

	// Distributed, per-vertex, both graph engines, 5 virtual machines
	// with 10M pixels per machine at paper scale.
	cfg := mrftask.Config{RowsPerMachine: 10_000, Cols: 1000, Labels: 5, Iterations: 2}
	mk := func() *sim.Cluster {
		c := sim.DefaultConfig(5)
		c.Scale = 100_000
		return sim.New(c)
	}
	gl, err := mrftask.RunGraphLab(mk(), cfg)
	if err != nil {
		log.Fatalf("graphlab: %v", err)
	}
	gir, err := mrftask.RunGiraph(mk(), cfg)
	if err != nil {
		log.Fatalf("giraph: %v", err)
	}
	fmt.Println("per-vertex MRF labeling, 50M pixels on 5 virtual machines:")
	fmt.Printf("  GraphLab: %s per sweep (accuracy %.3f)\n", bench.FormatDuration(gl.AvgIterSec()), gl.Metrics["accuracy"])
	fmt.Printf("  Giraph:   %s per sweep (accuracy %.3f)\n", bench.FormatDuration(gir.AvgIterSec()), gir.Metrics["accuracy"])
	fmt.Println()
	fmt.Println("No super vertices, no failures: on a sparse dependency graph the")
	fmt.Println("pull-based per-vertex model is at home — the paper's conjecture.")
}
