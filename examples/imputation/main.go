// Missing-data imputation: censor half of a clustered data set's values,
// recover them with the paper's Gaussian imputation sampler, and compare
// against mean imputation.
//
//	go run ./examples/imputation
package main

import (
	"fmt"
	"log"
	"math"

	"mlbench/internal/bench"
	"mlbench/internal/models/gmm"
	"mlbench/internal/models/impute"
	"mlbench/internal/randgen"
	"mlbench/internal/sim"
	"mlbench/internal/tasks/imputetask"
	"mlbench/internal/workload"
)

func main() {
	rng := randgen.New(11)
	const (
		n = 2000
		d = 8
		k = 4
	)
	data := workload.GenGMM(rng, workload.GMMConfig{N: n, D: d, K: k})
	censored, missing := workload.Censor(rng, data.Points)

	// Empirical hyperparameters from the observed values.
	mean, variance := workload.Moments(censored)
	h := gmm.HyperFromMoments(k, mean, variance)
	params, err := gmm.Init(rng, h)
	if err != nil {
		log.Fatal(err)
	}

	// The blocked Gibbs chain: cluster from observed coordinates, then
	// censored coordinates from the cluster's conditional normal, then
	// the GMM parameter updates.
	assign := make([]int, n)
	for iter := 0; iter < 25; iter++ {
		stats := gmm.NewStats(k, d)
		for i := range censored {
			c, err := impute.SampleMembershipObserved(rng, params.Pi, params.Mu, params.Sigma, censored[i], missing[i])
			if err != nil {
				log.Fatal(err)
			}
			assign[i] = c
			if err := impute.SampleMissing(rng, censored[i], missing[i], params.Mu[c], params.Sigma[c]); err != nil {
				log.Fatal(err)
			}
			stats.Add(c, censored[i], 1)
		}
		if err := gmm.UpdateParams(rng, h, params, stats); err != nil {
			log.Fatal(err)
		}
	}

	// Score: RMSE of recovered values vs mean imputation, over points
	// with at least one observed coordinate.
	var se, base, cnt float64
	for i := range censored {
		anyObs := false
		for _, m := range missing[i] {
			if !m {
				anyObs = true
			}
		}
		if !anyObs {
			continue
		}
		for j := range censored[i] {
			if missing[i][j] {
				diff := censored[i][j] - data.Points[i][j]
				se += diff * diff
				base += data.Points[i][j] * data.Points[i][j]
				cnt++
			}
		}
	}
	fmt.Printf("imputation RMSE:      %.2f\n", math.Sqrt(se/cnt))
	fmt.Printf("mean-imputation RMSE: %.2f\n\n", math.Sqrt(base/cnt))

	// The distributed version, as benchmarked in the paper's Figure 5.
	cfg := sim.DefaultConfig(5)
	cfg.Scale = 10_000
	cl := sim.New(cfg)
	res, err := imputetask.RunGraphLab(cl, imputetask.Config{
		K: 10, D: 10, PointsPerMachine: 10_000_000, Iterations: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphLab super-vertex imputation, 5 virtual machines: %s per iteration (paper: 6:59)\n",
		bench.FormatDuration(res.AvgIterSec()))
	fmt.Printf("distributed run RMSE %.2f vs baseline %.2f\n",
		res.Metrics["impute_rmse"], res.Metrics["baseline_rmse"])
}
