// SimSQL-style MCMC as mutually recursive random tables: the programming
// model of the paper's Section 4.2, where "random table definitions ...
// can be mutually recursive; hence one can define, in SQL, MCMC
// simulations."
//
//	go run ./examples/simsqlchain
//
// A tiny Beta-Bernoulli model runs entirely through the relational
// engine: theta[0] is drawn from the prior by a VG function, and
// theta[i] is re-drawn from the conjugate Beta conditional whose
// parameters come from a GROUP BY over the observations — one random
// table, one deterministic table, one VG function, exactly the paper's
// shape in miniature.
package main

import (
	"fmt"
	"log"

	"mlbench/internal/relational"
	"mlbench/internal/sim"
)

// betaVG draws theta ~ Beta(a, b) where (a, b) arrive as the single
// parameter row — a library VG function in SimSQL terms.
type betaVG struct{}

func (betaVG) Name() string { return "Beta" }
func (betaVG) OutSchema() relational.Schema {
	return relational.Floats("theta")
}
func (betaVG) Apply(m relational.VGMeter, params []relational.Tuple) []relational.Tuple {
	m.ChargeOps(1, 20, 1)
	a, b := params[0].Float(0), params[0].Float(1)
	return []relational.Tuple{relational.T(m.RNG().Beta(a, b))}
}

func main() {
	cfg := sim.DefaultConfig(3)
	cfg.Scale = 1 // run this one at true size
	cl := sim.New(cfg)
	eng := relational.NewEngine(cl)
	chain := relational.NewChain(eng)

	// The deterministic data table: 2000 coin flips, 70% heads.
	flips := relational.NewTable("flips", relational.Ints("id", "heads"), cl.NumMachines())
	flips.Scaled = true
	rng := eng.Cluster().Machine(0).RNG()
	heads := 0
	for i := 0; i < 2000; i++ {
		h := 0
		if rng.Float64() < 0.7 {
			h = 1
			heads++
		}
		flips.Parts[i%cl.NumMachines()] = append(flips.Parts[i%cl.NumMachines()],
			relational.T(float64(i), float64(h)))
	}
	chain.SetBase("flips", flips)

	// prior(a, b) — one tuple of hyperparameters.
	prior := relational.NewTable("prior", relational.Floats("a", "b"), cl.NumMachines())
	prior.Parts[0] = []relational.Tuple{relational.T(1, 1)}
	chain.SetBase("prior", prior)

	// theta[0]: draw from the prior.
	if err := chain.Init("theta", relational.VGApplyP(betaVG{}, -1,
		relational.ScanT(prior), true)); err != nil {
		log.Fatal(err)
	}

	// theta[i]: Beta(a + #heads, b + #tails) — the conjugate conditional,
	// with the counts computed by a GROUP BY over the flips.
	update := []relational.Update{{
		Name: "theta",
		Build: func(prev func(string) *relational.Table) relational.Plan {
			counts := relational.AsModelP(relational.GroupAggP(
				relational.ScanT(prev("flips")),
				nil, // one global group
				[]relational.AggSpec{
					{Kind: relational.AggSum, Col: 1, Name: "heads"},
					{Kind: relational.AggCount, Name: "n"},
				}))
			params := relational.ProjectP(counts, relational.Floats("a", "b"),
				func(t relational.Tuple) relational.Tuple {
					h, n := t.Float(0), t.Float(1)
					return relational.T(1+h, 1+(n-h))
				})
			return relational.VGApplyP(betaVG{}, -1, params, true)
		},
	}}

	fmt.Printf("observed heads rate: %.3f\n", float64(heads)/2000)
	for iter := 1; iter <= 5; iter++ {
		if err := chain.Step(update); err != nil {
			log.Fatal(err)
		}
		theta := chain.Table("theta").Rows()[0].Float(0)
		fmt.Printf("theta[%d] = %.3f\n", iter, theta)
	}
	fmt.Printf("\n%d MapReduce jobs' worth of virtual time: %.0f seconds\n",
		5*3, cl.Now())
	fmt.Println("Every iteration above ran as real relational jobs — GROUP BY,")
	fmt.Println("projection, VG invocation — on the simulated cluster, exactly")
	fmt.Println("how SimSQL turns recursive SQL into Hadoop MapReduce chains.")
}
