// Command mlbenchd is the standalone experiment service: the benchmark
// behind an HTTP/JSON API with a bounded worker pool, request
// coalescing, result caching, SSE progress, and graceful drain on
// SIGTERM. It is the same server as `mlbench serve`; see internal/serve
// for the API and DESIGN.md §11 for the architecture.
//
//	mlbenchd -addr 127.0.0.1:8080 -workers 2 -queue 16
//	curl -s localhost:8080/v1/runs -d '{"figure":"fig1a"}'
package main

import (
	"os"

	"mlbench/internal/serve"
)

func main() {
	os.Exit(serve.Main(os.Args[1:]))
}
