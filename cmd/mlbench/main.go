// Command mlbench regenerates the paper's evaluation tables (Figures 1-6
// of "A Comparison of Platforms for Implementing and Running Very Large
// Scale Machine Learning Algorithms", SIGMOD 2014) on the simulated
// cluster, printing measured values next to the paper's published ones.
//
// Usage:
//
//	mlbench [-figure fig1a] [-iters 2] [-scalediv 1] [-agree 3]
//
// With no -figure, every figure runs in order.
package main

import (
	"flag"
	"fmt"
	"os"

	"mlbench/internal/bench"
)

func main() {
	figure := flag.String("figure", "", "figure id to run (fig1a, fig1b, fig1c, fig2, fig3a, fig3b, fig4a, fig4b, fig5, fig6); empty = all")
	iters := flag.Int("iters", 2, "Gibbs iterations per experiment (the paper averaged the first five)")
	scaleDiv := flag.Float64("scalediv", 1, "divide the default scale-down factors by this (more real data, slower)")
	agree := flag.Float64("agree", 3, "agreement factor: cells within this multiple of the paper's value count as matching")
	seed := flag.Uint64("seed", 1, "simulation seed")
	loc := flag.Bool("loc", false, "print the lines-of-code table (the paper's LoC column analogue) and exit")
	list := flag.Bool("list", false, "list the available figures and exit")
	md := flag.Bool("md", false, "render tables as GitHub markdown (for EXPERIMENTS.md)")
	trace := flag.Bool("trace", false, "print each cell's most expensive simulation phases")
	flag.Parse()

	if *list {
		for _, f := range bench.Figures(bench.Options{}) {
			fmt.Printf("  %-7s %s\n", f.ID, f.Title)
		}
		return
	}

	if *loc {
		fmt.Println("Lines of Go code per task implementation (this reproduction):")
		for _, l := range bench.LinesOfCode() {
			fmt.Printf("  %-12s %-14s %5d\n", l.Task, l.Platform, l.Lines)
		}
		return
	}

	opts := bench.Options{Iterations: *iters, ScaleDiv: *scaleDiv, Seed: *seed, Trace: *trace}
	var figures []*bench.Figure
	if *figure == "" {
		figures = bench.Figures(opts)
	} else {
		f := bench.FigureByID(*figure, opts)
		if f == nil {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
			os.Exit(2)
		}
		figures = []*bench.Figure{f}
	}

	totalMatched, totalCells := 0, 0
	for _, f := range figures {
		t := f.Run(opts)
		if *md {
			fmt.Println(t.RenderMarkdown())
		} else {
			fmt.Println(t.Render())
		}
		if *trace {
			for _, r := range t.Rows {
				for _, c := range t.Cols {
					cell := t.Cells[r][c]
					if len(cell.Notes) == 0 {
						continue
					}
					fmt.Printf("  %s / %s:\n", r, c)
					for _, n := range cell.Notes {
						fmt.Printf("    %s\n", n)
					}
				}
			}
			fmt.Println()
		}
		m, n := t.Agreement(*agree)
		totalMatched += m
		totalCells += n
		fmt.Printf("agreement within %.1fx of the paper: %d/%d cells\n\n", *agree, m, n)
	}
	if len(figures) > 1 {
		fmt.Printf("overall agreement: %d/%d cells within %.1fx\n", totalMatched, totalCells, *agree)
	}
}
