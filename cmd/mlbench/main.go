// Command mlbench regenerates the paper's evaluation tables (Figures 1-6
// of "A Comparison of Platforms for Implementing and Running Very Large
// Scale Machine Learning Algorithms", SIGMOD 2014) on the simulated
// cluster, printing measured values next to the paper's published ones.
// The fig7 family goes beyond the paper: it injects machine crashes and
// stragglers and measures each platform's recovery.
//
// Usage:
//
//	mlbench run [-figure fig1a] [-row "Spark (Java)" -col 5m] [-iters 2]
//	mlbench run -spec spec.json              # run a serialized core.RunSpec
//	mlbench run -figure fig2 -failures 2 -failat 0.25 -straggle 4
//	mlbench run -figure fig1a -traceout fig1a.json   # Chrome trace-event JSON
//	mlbench bench                            # wall-time 1 worker vs the pool
//	mlbench gate -benchout baseline.json     # record a perf baseline
//	mlbench gate -baseline baseline.json     # gate: nonzero on regression
//	mlbench serve -addr 127.0.0.1:8080       # the experiment service (mlbenchd)
//	mlbench load -profile profiles/smoke.yaml -target http://127.0.0.1:8080
//	mlbench gen -spec datasets/smoke.yaml -out corpus.json   # synthetic dataset
//	mlbench list                             # available figures
//	mlbench loc                              # lines-of-code table
//
// Every run is a core.RunSpec — the same JSON document the experiment
// service accepts over HTTP — so a CLI invocation and a served request
// with equal specs produce byte-identical tables.
//
// The pre-subcommand flat form (`mlbench -figure fig1a ...`) was removed
// after its deprecation period; flat invocations exit 2 with a pointer
// to the equivalent subcommand.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mlbench/internal/bench"
	"mlbench/internal/core"
	"mlbench/internal/perfgate"
	"mlbench/internal/serve"
	"mlbench/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	if msg, removed := flatFormError(os.Args[1:]); removed {
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "run":
		os.Exit(cmdRun(args))
	case "bench":
		os.Exit(cmdBench(args))
	case "gate":
		os.Exit(cmdGate(args))
	case "serve":
		os.Exit(serve.Main(args))
	case "load":
		os.Exit(cmdLoad(args))
	case "gen":
		os.Exit(cmdGen(args))
	case "list":
		os.Exit(cmdList(args))
	case "loc":
		os.Exit(cmdLoc(args))
	case "help", "-h", "--help":
		usage(os.Stdout)
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "mlbench: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `mlbench — the SIGMOD 2014 platform-comparison benchmark on a simulated cluster

Commands:
  run    run figures (or one cell) and print the virtual-clock tables
  bench  wall-time figures at 1 worker vs the full pool (BENCH_host.json)
  gate   performance-regression gate: measure, record, compare baselines
  serve  long-running experiment service (HTTP/JSON + SSE; see cmd/mlbenchd)
  load   replay a time-compressed traffic profile against mlbenchd, judge SLOs
  gen    generate a synthetic dataset from a spec file or named scenario
  list   list the available figures
  loc    print the lines-of-code table (the paper's LoC column analogue)

Run 'mlbench <command> -h' for that command's flags.
`)
}

// specFlags registers the RunSpec-shaped flags shared by `run` and the
// legacy flat form, and returns a builder that assembles the spec after
// parsing.
func specFlags(fs *flag.FlagSet) func() core.RunSpec {
	figure := fs.String("figure", "", "figure id to run (fig1a..fig6 from the paper; fig7, fig7b, fig7c measure failure recovery; fig-ps adds the parameter-server engine head-to-head); empty = all")
	row := fs.String("row", "", "with -col, narrow the run to a single table cell (row label)")
	col := fs.String("col", "", "with -row, narrow the run to a single table cell (column label)")
	iters := fs.Int("iters", 2, "Gibbs iterations per experiment (the paper averaged the first five)")
	scaleDiv := fs.Float64("scalediv", 1, "divide the default scale-down factors by this (more real data, slower)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "host goroutines running simulated machines concurrently (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
	tracef := fs.Bool("trace", false, "print each cell's most expensive simulation phases (time, comm share, tasks)")
	traceOut := fs.String("traceout", "", "write the structured run trace as Chrome trace-event JSON to this file (chrome://tracing / Perfetto)")
	traceCSV := fs.String("tracecsv", "", "write the structured run trace as CSV to this file")
	metrics := fs.Bool("metrics", false, "print the per-engine/cell/phase metrics registry after the tables")
	failures := fs.Int("failures", 0, "machine crashes to inject into every cell (deterministic from -seed); each engine recovers its own way: MR task retry, Spark lineage recompute, Giraph checkpoint rollback, GraphLab snapshot restore, parameter-server shard re-replication from the hot standby")
	failAt := fs.Float64("failat", 0.5, "iteration offset of the first crash (0.5 = mid-first-iteration)")
	straggle := fs.Float64("straggle", 0, "slow one machine by this factor for the whole run (>1 to enable)")
	ckpt := fs.Int("ckpt", 0, "Giraph checkpoint interval in supersteps (0 = default 3 under faults, <0 = off)")
	snap := fs.Int("snap", 0, "GraphLab snapshot interval in rounds (0 = default 3 under faults, <0 = off)")
	sampler := fs.String("sampler", "", "LDA/HMM token sampler tier: dense (default, the historical O(T) scan), alias (exact per-token alias draw), or mhalias (cached Metropolis-Hastings alias kernel, LightLDA-style)")
	shards := fs.Int("shards", 0, "parameter-server shard count for fig-ps (0 = one shard per machine)")
	staleness := fs.Int("staleness", 0, "parameter-server staleness bound s for fig-ps (0 = synchronous, BSP-equivalent cycles)")
	dataset := fs.String("dataset", "", "datagen scenario reshaping every task's synthetic data (skew-light, skew-heavy, imbal-2x, imbal-8x); empty = the paper's shapes")
	machines := fs.Int("machines", 0, "fig-scale top machine count; the sweep's columns run machines/100, machines/10, and machines simulated machines (0 = 10000)")
	chunk := fs.Int("chunk", 0, "elements resident per streamed-partition cursor (0 = default); like -workers, a host-memory knob that cannot change any result")
	return func() core.RunSpec {
		return core.RunSpec{
			Figure:     *figure,
			Row:        *row,
			Col:        *col,
			Iterations: *iters,
			ScaleDiv:   *scaleDiv,
			Seed:       *seed,
			Workers:    *workers,
			Machines:   *machines,
			Chunk:      *chunk,
			Sampler:    *sampler,
			Shards:     *shards,
			Staleness:  *staleness,
			Dataset:    *dataset,
			Faults: core.FaultConfig{Failures: *failures, FailAt: *failAt, Straggle: *straggle,
				BSPCheckpointEvery: *ckpt, GASSnapshotEvery: *snap},
			Trace: core.TraceSpec{Phases: *tracef, Out: *traceOut, CSV: *traceCSV, Metrics: *metrics},
		}
	}
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	buildSpec := specFlags(fs)
	specFile := fs.String("spec", "", "read the run's core.RunSpec from this JSON file ('-' = stdin) instead of the flags")
	agree := fs.Float64("agree", 3, "agreement factor: cells within this multiple of the paper's value count as matching")
	md := fs.Bool("md", false, "render tables as GitHub markdown (for EXPERIMENTS.md)")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "run: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	var specs []core.RunSpec
	if *specFile != "" {
		data, err := readSpecFile(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "run: %v\n", err)
			return 1
		}
		spec, err := core.ParseRunSpec(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "run: %v\n", err)
			return 1
		}
		specs = []core.RunSpec{spec}
	} else {
		spec := buildSpec()
		if spec.Figure == "" {
			for _, id := range core.FigureIDs() {
				s := spec
				s.Figure = id
				specs = append(specs, s)
			}
		} else {
			specs = []core.RunSpec{spec}
		}
	}
	return executeRuns(specs, *agree, *md)
}

func readSpecFile(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// executeRuns runs each spec through core.Execute (the exact code path
// the experiment service uses) and prints tables, agreement, and any
// requested trace artifacts. A single command-owned recorder aggregates
// every figure that ran into one export (each cell is its own trace
// process).
func executeRuns(specs []core.RunSpec, agree float64, md bool) int {
	wantTrace := false
	for _, s := range specs {
		if s.Trace.Phases || s.Trace.Out != "" || s.Trace.CSV != "" || s.Trace.Metrics {
			wantTrace = true
		}
	}
	var rec *trace.Recorder
	if wantTrace {
		rec = trace.NewRecorder()
	}

	totalMatched, totalCells := 0, 0
	for _, spec := range specs {
		res, err := core.Execute(context.Background(), spec, core.ExecOptions{Recorder: rec, SkipExports: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "run: %v\n", err)
			return exitCodeFor(err)
		}
		t := res.Table
		if md {
			fmt.Println(t.RenderMarkdown())
		} else {
			fmt.Println(t.Render())
		}
		if spec.Trace.Phases {
			printCellNotes(t)
		}
		m, n := t.Agreement(agree)
		totalMatched += m
		totalCells += n
		fmt.Printf("agreement within %.1fx of the paper: %d/%d cells\n\n", agree, m, n)
	}
	if len(specs) > 1 {
		fmt.Printf("overall agreement: %d/%d cells within %.1fx\n", totalMatched, totalCells, agree)
	}

	// Export paths are shared flags, hence identical across specs.
	last := specs[len(specs)-1]
	if last.Trace.Metrics {
		fmt.Print(rec.Metrics().Render())
	}
	if last.Trace.Out != "" {
		if err := trace.WriteChromeFile(last.Trace.Out, rec); err != nil {
			fmt.Fprintf(os.Stderr, "traceout: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s (open in chrome://tracing or https://ui.perfetto.dev)\n", last.Trace.Out)
	}
	if last.Trace.CSV != "" {
		if err := trace.WriteCSVFile(last.Trace.CSV, rec); err != nil {
			fmt.Fprintf(os.Stderr, "tracecsv: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", last.Trace.CSV)
	}
	return 0
}

// exitCodeFor maps validation errors (bad figure/row/col, bad knobs) to
// exit 2 like flag errors; execution failures exit 1.
func exitCodeFor(err error) int {
	if strings.Contains(err.Error(), "valid") || strings.Contains(err.Error(), "must be") {
		return 2
	}
	return 1
}

func printCellNotes(t *core.Table) {
	for _, r := range t.Rows {
		for _, c := range t.Cols {
			cell := t.Cells[r][c]
			if len(cell.Notes) == 0 {
				continue
			}
			fmt.Printf("  %s / %s:\n", r, c)
			for _, n := range cell.Notes {
				fmt.Printf("    %s\n", n)
			}
		}
	}
	fmt.Println()
}

func cmdBench(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	buildSpec := specFlags(fs)
	benchout := fs.String("benchout", "BENCH_host.json", "output path for the wall-time measurements")
	fs.Parse(args)
	return hostBench(buildSpec(), *benchout)
}

// hostBench wall-times the selected figure at 1 worker vs the full pool
// and writes the versioned benchmark JSON.
func hostBench(spec core.RunSpec, benchout string) int {
	ids := []string{"fig4b"}
	if spec.Figure != "" {
		ids = []string{spec.Figure}
	}
	spec = spec.Normalize()
	o := spec.Options()
	records, err := bench.RunHostBench(ids, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	for i := 0; i+1 < len(records); i += 2 {
		seq, par := records[i], records[i+1]
		fmt.Printf("%s (%d machines): %d workers %.2fs wall -> %d workers %.2fs wall (%.2fx), virtual %s\n",
			seq.Figure, seq.Machines, seq.Workers, seq.WallSec, par.Workers, par.WallSec,
			seq.WallSec/par.WallSec, bench.FormatDuration(seq.VirtualSec))
	}
	doc := perfgate.NewFile()
	doc.Figures = records
	if err := doc.WriteFile(benchout); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (schema v%d)\n", benchout, perfgate.SchemaVersion)
	return 0
}

// gateParams carries the `gate` knobs shared with the legacy flat form.
type gateParams struct {
	spec      core.RunSpec
	baseline  string
	benchout  string
	gatereps  int
	gatetol   float64
	alloctol  float64
	canary    float64
	gatecells bool
}

func gateFlags(fs *flag.FlagSet, buildSpec func() core.RunSpec) func() gateParams {
	baseline := fs.String("baseline", "", "baseline JSON to compare the current measurement against")
	benchout := fs.String("benchout", "BENCH_host.json", "output path for the measurements")
	gatereps := fs.Int("gatereps", perfgate.DefaultReps, "timed repetitions per benchmark (min-of-N plus median)")
	gatediv := fs.Float64("gatediv", perfgate.GateScaleDiv, "scale divisor for the figure-cell benchmarks")
	gatetol := fs.Float64("gatetol", perfgate.DefaultTolerance, "relative wall-time tolerance before a regression is fatal")
	alloctol := fs.Float64("alloctol", perfgate.DefaultAllocTolerance, "relative allocs/op tolerance (growth beyond it is a hard failure)")
	canary := fs.Float64("canary", 1, "seeded slowdown multiplier on measured wall times (2 = the self-test canary that must trip the gate)")
	gatecells := fs.Bool("gatecells", true, "include the per-figure-cell benchmarks")
	return func() gateParams {
		spec := buildSpec()
		spec.Iterations = 1
		spec.ScaleDiv = *gatediv
		return gateParams{
			spec: spec, baseline: *baseline, benchout: *benchout,
			gatereps: *gatereps, gatetol: *gatetol, alloctol: *alloctol,
			canary: *canary, gatecells: *gatecells,
		}
	}
}

func cmdGate(args []string) int {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "host goroutines per run (0 = GOMAXPROCS)")
	buildGate := gateFlags(fs, func() core.RunSpec {
		return core.RunSpec{Seed: *seed, Workers: *workers}
	})
	fs.Parse(args)
	return benchGate(buildGate())
}

// benchGate runs the performance gate: measure every figure cell at
// reduced scale plus the hot-path microbenchmarks, write the benchmark
// JSON, compare against a baseline if given, and exit nonzero on
// regression.
func benchGate(g gateParams) int {
	doc, err := perfgate.Collect(perfgate.CollectOptions{
		Spec:      g.spec,
		Harness:   perfgate.HarnessOptions{Reps: g.gatereps, Slowdown: g.canary, Log: logf},
		SkipCells: !g.gatecells,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gate: %v\n", err)
		return 1
	}
	if err := doc.WriteFile(g.benchout); err != nil {
		fmt.Fprintf(os.Stderr, "gate: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d benchmarks, schema v%d)\n", g.benchout, len(doc.Benchmarks), perfgate.SchemaVersion)
	if g.baseline == "" {
		return 0
	}
	base, err := perfgate.ReadFile(g.baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gate: %v\n", err)
		return 1
	}
	report := perfgate.Compare(base, doc, perfgate.GateOptions{Tolerance: g.gatetol, AllocTolerance: g.alloctol})
	fmt.Print(report.Render())
	if report.Failed() {
		return 1
	}
	return 0
}

func cmdList(args []string) int {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	fs.Parse(args)
	for _, f := range bench.Figures(bench.Options{}) {
		fmt.Printf("  %-7s %s\n", f.ID, f.Title)
	}
	return 0
}

func cmdLoc(args []string) int {
	fs := flag.NewFlagSet("loc", flag.ExitOnError)
	fs.Parse(args)
	fmt.Println("Lines of Go code per task implementation (this reproduction):")
	for _, l := range bench.LinesOfCode() {
		fmt.Printf("  %-12s %-14s %5d\n", l.Task, l.Platform, l.Lines)
	}
	return 0
}

// flatFormError detects the removed pre-subcommand flat form
// (`mlbench -figure fig1a ...`) and returns the migration message. The
// flat surface was deprecated for several releases and is now gone:
// failing loudly with the equivalent subcommand beats silently parsing
// half the old flags.
func flatFormError(args []string) (string, bool) {
	if len(args) == 0 || !strings.HasPrefix(args[0], "-") {
		return "", false
	}
	return fmt.Sprintf("mlbench: top-level flags were removed; use `mlbench run %s` (gate: `mlbench gate ...`, wall-time: `mlbench bench ...`; see `mlbench help`)",
		strings.Join(args, " ")), true
}

// logf is the gate progress sink: one line per measured benchmark.
func logf(format string, args ...any) {
	fmt.Printf(format+"\n", args...)
}
