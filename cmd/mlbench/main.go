// Command mlbench regenerates the paper's evaluation tables (Figures 1-6
// of "A Comparison of Platforms for Implementing and Running Very Large
// Scale Machine Learning Algorithms", SIGMOD 2014) on the simulated
// cluster, printing measured values next to the paper's published ones.
// The fig7 family goes beyond the paper: it injects machine crashes and
// stragglers and measures each platform's recovery.
//
// Usage:
//
//	mlbench [-figure fig1a] [-iters 2] [-scalediv 1] [-agree 3]
//	mlbench -figure fig7                      # recovery table, 1 crash
//	mlbench -figure fig2 -failures 2 -failat 0.25 -straggle 4
//	mlbench -figure fig1a -traceout fig1a.json   # Chrome trace-event JSON
//	mlbench -figure fig2 -metrics                # per-cell metric registry
//	mlbench -benchgate -benchout baseline.json   # record a perf baseline
//	mlbench -benchgate -baseline baseline.json   # gate: nonzero on regression
//
// With no -figure, every figure runs in order. -traceout/-tracecsv write
// one file covering every figure that ran; open the JSON in
// chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"

	"mlbench/internal/bench"
	"mlbench/internal/perfgate"
	"mlbench/internal/trace"
)

func main() {
	figure := flag.String("figure", "", "figure id to run (fig1a..fig6 from the paper; fig7, fig7b, fig7c measure failure recovery); empty = all")
	iters := flag.Int("iters", 2, "Gibbs iterations per experiment (the paper averaged the first five)")
	scaleDiv := flag.Float64("scalediv", 1, "divide the default scale-down factors by this (more real data, slower)")
	agree := flag.Float64("agree", 3, "agreement factor: cells within this multiple of the paper's value count as matching")
	seed := flag.Uint64("seed", 1, "simulation seed")
	loc := flag.Bool("loc", false, "print the lines-of-code table (the paper's LoC column analogue) and exit")
	list := flag.Bool("list", false, "list the available figures and exit")
	md := flag.Bool("md", false, "render tables as GitHub markdown (for EXPERIMENTS.md)")
	tracef := flag.Bool("trace", false, "print each cell's most expensive simulation phases (time, comm share, tasks)")
	traceOut := flag.String("traceout", "", "write the structured run trace as Chrome trace-event JSON to this file (chrome://tracing / Perfetto)")
	traceCSV := flag.String("tracecsv", "", "write the structured run trace as CSV to this file")
	metrics := flag.Bool("metrics", false, "print the per-engine/cell/phase metrics registry after the tables")
	failures := flag.Int("failures", 0, "machine crashes to inject into every cell (deterministic from -seed)")
	failAt := flag.Float64("failat", 0.5, "iteration offset of the first crash (0.5 = mid-first-iteration)")
	straggle := flag.Float64("straggle", 0, "slow one machine by this factor for the whole run (>1 to enable)")
	ckpt := flag.Int("ckpt", 0, "Giraph checkpoint interval in supersteps (0 = default 3 under faults, <0 = off)")
	snap := flag.Int("snap", 0, "GraphLab snapshot interval in rounds (0 = default 3 under faults, <0 = off)")
	workers := flag.Int("workers", 0, "host goroutines running simulated machines concurrently (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
	hostbench := flag.Bool("hostbench", false, "wall-time the selected figures at 1 worker vs the full pool, write the benchmark JSON, and exit")
	benchgate := flag.Bool("benchgate", false, "run the performance gate: measure every figure cell at reduced scale plus the hot-path microbenchmarks, write the benchmark JSON, compare against -baseline if set, and exit nonzero on regression")
	baseline := flag.String("baseline", "", "benchgate baseline JSON to compare the current measurement against")
	benchout := flag.String("benchout", "BENCH_host.json", "output path for -hostbench / -benchgate measurements")
	gatereps := flag.Int("gatereps", perfgate.DefaultReps, "benchgate timed repetitions per benchmark (min-of-N plus median)")
	gatediv := flag.Float64("gatediv", perfgate.GateScaleDiv, "benchgate scale divisor for the figure-cell benchmarks")
	gatetol := flag.Float64("gatetol", perfgate.DefaultTolerance, "benchgate relative wall-time tolerance before a regression is fatal")
	alloctol := flag.Float64("alloctol", perfgate.DefaultAllocTolerance, "benchgate relative allocs/op tolerance (growth beyond it is a hard failure)")
	canary := flag.Float64("canary", 1, "benchgate seeded slowdown multiplier on measured wall times (2 = the self-test canary that must trip the gate)")
	gatecells := flag.Bool("gatecells", true, "benchgate: include the per-figure-cell benchmarks")
	flag.Parse()

	if *list {
		for _, f := range bench.Figures(bench.Options{}) {
			fmt.Printf("  %-7s %s\n", f.ID, f.Title)
		}
		return
	}

	if *loc {
		fmt.Println("Lines of Go code per task implementation (this reproduction):")
		for _, l := range bench.LinesOfCode() {
			fmt.Printf("  %-12s %-14s %5d\n", l.Task, l.Platform, l.Lines)
		}
		return
	}

	opts := bench.Options{Iterations: *iters, ScaleDiv: *scaleDiv, Seed: *seed, Trace: *tracef,
		HostWorkers: *workers,
		Faults: bench.FaultConfig{Failures: *failures, FailAt: *failAt, Straggle: *straggle,
			BSPCheckpointEvery: *ckpt, GASSnapshotEvery: *snap}}
	// One command-owned recorder aggregates every figure that runs into a
	// single export (each cell is its own trace process).
	var rec *trace.Recorder
	if *tracef || *traceOut != "" || *traceCSV != "" || *metrics {
		rec = trace.NewRecorder()
		opts.Recorder = rec
	}

	if *hostbench {
		ids := []string{"fig4b"}
		if *figure != "" {
			ids = []string{*figure}
		}
		records, err := bench.RunHostBench(ids, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hostbench: %v\n", err)
			os.Exit(1)
		}
		for i := 0; i+1 < len(records); i += 2 {
			seq, par := records[i], records[i+1]
			fmt.Printf("%s (%d machines): %d workers %.2fs wall -> %d workers %.2fs wall (%.2fx), virtual %s\n",
				seq.Figure, seq.Machines, seq.Workers, seq.WallSec, par.Workers, par.WallSec,
				seq.WallSec/par.WallSec, bench.FormatDuration(seq.VirtualSec))
		}
		doc := perfgate.NewFile()
		doc.Figures = records
		if err := doc.WriteFile(*benchout); err != nil {
			fmt.Fprintf(os.Stderr, "hostbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (schema v%d)\n", *benchout, perfgate.SchemaVersion)
		return
	}

	if *benchgate {
		doc, err := perfgate.Collect(perfgate.CollectOptions{
			Bench:     bench.Options{Iterations: 1, ScaleDiv: *gatediv, Seed: *seed, HostWorkers: *workers},
			Harness:   perfgate.HarnessOptions{Reps: *gatereps, Slowdown: *canary, Log: logf},
			SkipCells: !*gatecells,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		if err := doc.WriteFile(*benchout); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks, schema v%d)\n", *benchout, len(doc.Benchmarks), perfgate.SchemaVersion)
		if *baseline == "" {
			return
		}
		base, err := perfgate.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		report := perfgate.Compare(base, doc, perfgate.GateOptions{Tolerance: *gatetol, AllocTolerance: *alloctol})
		fmt.Print(report.Render())
		if report.Failed() {
			os.Exit(1)
		}
		return
	}

	var figures []*bench.Figure
	if *figure == "" {
		figures = bench.Figures(opts)
	} else {
		f := bench.FigureByID(*figure, opts)
		if f == nil {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
			os.Exit(2)
		}
		figures = []*bench.Figure{f}
	}

	totalMatched, totalCells := 0, 0
	for _, f := range figures {
		t := f.Run(opts)
		if *md {
			fmt.Println(t.RenderMarkdown())
		} else {
			fmt.Println(t.Render())
		}
		if *tracef {
			for _, r := range t.Rows {
				for _, c := range t.Cols {
					cell := t.Cells[r][c]
					if len(cell.Notes) == 0 {
						continue
					}
					fmt.Printf("  %s / %s:\n", r, c)
					for _, n := range cell.Notes {
						fmt.Printf("    %s\n", n)
					}
				}
			}
			fmt.Println()
		}
		m, n := t.Agreement(*agree)
		totalMatched += m
		totalCells += n
		fmt.Printf("agreement within %.1fx of the paper: %d/%d cells\n\n", *agree, m, n)
	}
	if len(figures) > 1 {
		fmt.Printf("overall agreement: %d/%d cells within %.1fx\n", totalMatched, totalCells, *agree)
	}

	if *metrics {
		fmt.Print(rec.Metrics().Render())
	}
	if *traceOut != "" {
		if err := trace.WriteChromeFile(*traceOut, rec); err != nil {
			fmt.Fprintf(os.Stderr, "traceout: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
	if *traceCSV != "" {
		if err := trace.WriteCSVFile(*traceCSV, rec); err != nil {
			fmt.Fprintf(os.Stderr, "tracecsv: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *traceCSV)
	}
}

// logf is the benchgate progress sink: one line per measured benchmark.
func logf(format string, args ...any) {
	fmt.Printf(format+"\n", args...)
}
