package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mlbench/internal/loadgen"
)

// cmdLoad implements `mlbench load`: replay a traffic profile against a
// running mlbenchd at the profile's (or an overridden) time compression
// and judge the result against the profile's SLO block. Exit codes: 0 =
// replay finished and every SLO verdict passed, 1 = replay finished but
// an SLO verdict failed (or the server was unreachable), 2 = the profile
// or flags were invalid.
func cmdLoad(args []string) int {
	fs := flag.NewFlagSet("mlbench load", flag.ExitOnError)
	profile := fs.String("profile", "", "traffic profile to replay (.yaml/.yml/.json; required)")
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of the mlbenchd under test")
	compress := fs.Float64("compress", 0, "override the profile's time-compression factor (0 = profile's own)")
	seed := fs.Uint64("seed", 0, "override the profile's schedule seed (0 = profile's own)")
	csvOut := fs.String("csv", "", "write the per-bucket timeline CSV to this file (empty = stdout)")
	sumOut := fs.String("summary", "", "write the summary JSON to this file (empty = stdout)")
	noretry := fs.Bool("noretry", false, "do not honor Retry-After on 429 (count rejections and move on)")
	quiet := fs.Bool("quiet", false, "suppress replay narration on stderr")
	fs.Parse(args)
	if *profile == "" {
		fmt.Fprintln(os.Stderr, "mlbench load: -profile is required")
		fs.Usage()
		return 2
	}
	p, err := loadgen.LoadProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlbench load: %v\n", err)
		return 2
	}
	opts := loadgen.Options{
		BaseURL:      *target,
		Compression:  *compress,
		Seed:         *seed,
		DisableRetry: *noretry,
	}
	if !*quiet {
		opts.Log = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "load: "+format+"\n", a...)
		}
	}
	res, err := loadgen.Run(p, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlbench load: %v\n", err)
		return 1
	}
	if err := writeTo(*csvOut, func(w io.Writer) error {
		return loadgen.WriteCSV(w, res.Buckets)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "mlbench load: write timeline: %v\n", err)
		return 1
	}
	if err := writeTo(*sumOut, func(w io.Writer) error {
		return loadgen.WriteSummary(w, &res.Summary)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "mlbench load: write summary: %v\n", err)
		return 1
	}
	s := res.Summary
	fmt.Fprintf(os.Stderr, "load: %s: issued %d, completed %d, 429 %d, 503 %d, errors %d, p99 %.1fms, workers %d..%d\n",
		p.Name, s.Issued, s.Completed, s.Rejected429, s.Unavail503, s.Errors, s.P99Ms, s.MinWorkers, s.MaxWorkers)
	for _, v := range s.Verdicts {
		mark := "PASS"
		if !v.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "load: slo %-18s limit %g actual %g  %s\n", v.Name, v.Limit, v.Actual, mark)
	}
	if !s.Pass {
		fmt.Fprintln(os.Stderr, "load: SLO FAILED")
		return 1
	}
	fmt.Fprintln(os.Stderr, "load: SLO passed")
	return 0
}

// writeTo streams through fn into path, or stdout when path is empty.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
