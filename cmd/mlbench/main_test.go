package main

import (
	"strings"
	"testing"
)

// The pre-subcommand flat form is gone: a dash-prefixed first argument
// must produce the migration hint (and main exits 2 on it), never fall
// through to a half-parsed legacy flag set.
func TestFlatFormRejected(t *testing.T) {
	msg, removed := flatFormError([]string{"-figure", "fig1a", "-iters", "2"})
	if !removed {
		t.Fatalf("flat invocation not rejected")
	}
	for _, want := range []string{"top-level flags were removed", "mlbench run -figure fig1a -iters 2", "mlbench help"} {
		if !strings.Contains(msg, want) {
			t.Errorf("migration message %q missing %q", msg, want)
		}
	}
}

func TestSubcommandsNotFlatForm(t *testing.T) {
	for _, args := range [][]string{{"run", "-figure", "fig1a"}, {"list"}, nil} {
		if _, removed := flatFormError(args); removed {
			t.Errorf("args %v wrongly treated as the removed flat form", args)
		}
	}
}
