package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"mlbench/internal/datagen"
	"mlbench/internal/fsutil"
)

// cmdGen materializes a synthetic dataset from a declarative spec file or
// a built-in scenario, prints a summary ending in the canonical
// fingerprint line (the datagen-smoke CI job greps it), and optionally
// writes the full dataset as JSON.
func cmdGen(args []string) int {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	specFile := fs.String("spec", "", "dataset spec file (.json or the YAML subset; see datasets/smoke.yaml)")
	scenario := fs.String("scenario", "", "built-in scenario instead of -spec: "+strings.Join(datagen.ScenarioNames(), ", "))
	workers := fs.Int("workers", 0, "goroutines generating shards concurrently (0 = GOMAXPROCS); the dataset is byte-identical at any value")
	out := fs.String("out", "", "write the full dataset as JSON to this file ('-' = stdout)")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "gen: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if (*specFile == "") == (*scenario == "") {
		fmt.Fprintln(os.Stderr, "gen: exactly one of -spec or -scenario is required")
		return 2
	}

	var spec datagen.DatasetSpec
	if *specFile != "" {
		s, err := datagen.LoadSpec(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gen: %v\n", err)
			return 1
		}
		spec = s
	} else {
		if err := datagen.ParseScenario(*scenario); err != nil || *scenario == "" {
			fmt.Fprintf(os.Stderr, "gen: %v\n", err)
			return 2
		}
		spec = *datagen.ScenarioSpec(*scenario)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	d, err := datagen.Generate(spec, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gen: %v\n", err)
		return 1
	}

	if len(d.Docs) > 0 {
		fmt.Printf("corpus: %d docs, %d tokens\n", len(d.Docs), d.TokenCount())
	}
	if d.GMM != nil {
		fmt.Printf("gmm: %d points, %d clusters\n", len(d.GMM.Points), len(d.GMM.Mu))
	}
	if d.Regression != nil {
		fmt.Printf("regression: %d observations, %d regressors\n", len(d.Regression.X), len(d.Regression.TrueBeta))
	}
	if d.Graph != nil {
		fmt.Printf("graph: %d vertices, %d edges\n", d.Graph.Vertices, d.EdgeCount())
	}
	if d.PartitionCounts != nil {
		fmt.Printf("partition: %v\n", d.PartitionCounts)
	}

	if *out != "" {
		f := os.Stdout
		if *out != "-" {
			var err error
			f, err = fsutil.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gen: %v\n", err)
				return 1
			}
		}
		if err := d.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "gen: write %s: %v\n", *out, err)
			return 1
		}
		if *out != "-" {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "gen: close %s: %v\n", *out, err)
				return 1
			}
			fmt.Printf("wrote %s\n", *out)
		}
	}

	// Last line, fixed format: the smoke script and docs rely on it.
	fmt.Printf("fingerprint: %s\n", d.Fingerprint)
	return 0
}
