#!/usr/bin/env bash
# Smoke test for the load-replay battery (internal/loadgen): start
# mlbenchd with the elastic worker pool, replay profiles/smoke.yaml at
# its baked-in time compression with `mlbench load`, require the SLO
# verdict to pass (exit 0), sanity-check the timeline CSV and summary
# JSON artifacts, then SIGTERM the server and require a clean drain.
#
# Usage: scripts/load_smoke.sh [path-to-mlbenchd] [path-to-mlbench]
set -euo pipefail

SERVER="${1:-./mlbenchd}"
CLI="${2:-./mlbench}"
ADDR="127.0.0.1:18081"
BASE="http://$ADDR"
PROFILE="profiles/smoke.yaml"
CSV="load-smoke.csv"
SUMMARY="load-smoke.summary.json"

fail() { echo "load_smoke: FAIL: $*" >&2; exit 1; }

"$SERVER" -addr "$ADDR" -minworkers 1 -maxworkers 4 &
PID=$!
cleanup() { kill -9 "$PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "server did not become ready"

# 1. Replay the smoke profile. `mlbench load` exits 0 only when the
# replay finished and every SLO verdict in the profile passed.
"$CLI" load -profile "$PROFILE" -target "$BASE" -csv "$CSV" -summary "$SUMMARY" \
  || fail "load replay or SLO verdict failed"
echo "load_smoke: SLO verdicts passed"

# 2. The timeline artifact: header row plus one row per bucket, and at
# least one bucket actually completed work.
head -n 1 "$CSV" | grep -q '^bucket,start_sec,issued,completed' || fail "timeline CSV header malformed: $(head -n 1 "$CSV")"
rows=$(( $(wc -l < "$CSV") - 1 ))
[ "$rows" -ge 6 ] || fail "timeline CSV has only $rows bucket rows"
awk -F, 'NR>1 {c+=$4} END {exit c>0?0:1}' "$CSV" || fail "no completions recorded in the timeline"
echo "load_smoke: timeline CSV OK ($rows buckets)"

# 3. The summary artifact: machine-readable verdicts with pass: true.
grep -q '"pass": true' "$SUMMARY" || fail "summary JSON not passing: $(cat "$SUMMARY")"
grep -q '"verdicts"' "$SUMMARY" || fail "summary JSON missing verdicts: $(cat "$SUMMARY")"
echo "load_smoke: summary JSON OK"

# 4. The elastic pool saw the load: the server's own metrics report the
# autoscaler bounds the flags configured.
metrics=$(curl -sf "$BASE/v1/metrics") || fail "metrics download failed"
[[ "$metrics" == *'"workers_max": 4'* ]] || fail "autoscaler not enabled on the server: $metrics"
echo "load_smoke: autoscaler metrics OK"

# 5. SIGTERM must drain gracefully and exit 0.
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
trap - EXIT
[ "$rc" -eq 0 ] || fail "server exited $rc on SIGTERM (want clean drain, 0)"
echo "load_smoke: graceful drain OK"
echo "load_smoke: PASS"
