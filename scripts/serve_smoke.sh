#!/usr/bin/env bash
# Smoke test for the experiment service (internal/serve): start mlbenchd,
# submit a reduced-scale fig1a run, assert the identical second request is
# served from cache in well under 100ms, check the table and trace
# downloads, then SIGTERM the server and require a clean (exit 0) drain.
#
# Usage: scripts/serve_smoke.sh [path-to-mlbenchd]
set -euo pipefail

BIN="${1:-./mlbenchd}"
ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
SPEC='{"figure":"fig1a","iters":1,"scalediv":0.05}'

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }
# Extract a scalar field from the server's indented JSON.
jfield() { sed -n "s/.*\"$1\": \"\{0,1\}\([^\",}]*\)\"\{0,1\},\{0,1\}\$/\1/p" | head -n 1; }

"$BIN" -addr "$ADDR" -workers 1 &
PID=$!
cleanup() { kill -9 "$PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "server did not become ready"

# 1. Submit and wait for completion.
resp=$(curl -sf -X POST "$BASE/v1/runs" -d "$SPEC") || fail "submit rejected: $resp"
id=$(echo "$resp" | jfield id)
[ -n "$id" ] || fail "no run id in: $resp"
echo "serve_smoke: submitted $id"

state=""
for _ in $(seq 1 600); do
  state=$(curl -sf "$BASE/v1/runs/$id" | jfield state)
  case "$state" in
    done) break ;;
    failed|canceled) fail "run $id ended $state" ;;
  esac
  sleep 0.5
done
[ "$state" = "done" ] || fail "run $id did not finish (state: $state)"
echo "serve_smoke: $id done"

# 1b. One parameter-server cell: the fifth engine must run end to end
# through the service and render into the fig-ps head-to-head table.
PS_SPEC='{"figure":"fig-ps","row":"Param Server","col":"GMM 10d","iters":1,"scalediv":0.02,"staleness":1}'
resp=$(curl -sf -X POST "$BASE/v1/runs" -d "$PS_SPEC") || fail "fig-ps submit rejected: $resp"
psid=$(echo "$resp" | jfield id)
[ -n "$psid" ] || fail "no run id in: $resp"
state=""
for _ in $(seq 1 600); do
  state=$(curl -sf "$BASE/v1/runs/$psid" | jfield state)
  case "$state" in
    done) break ;;
    failed|canceled) fail "run $psid ended $state" ;;
  esac
  sleep 0.5
done
[ "$state" = "done" ] || fail "fig-ps run $psid did not finish (state: $state)"
pstable=$(curl -sf "$BASE/v1/runs/$psid/table") || fail "fig-ps table download failed"
[[ "$pstable" == *"Param Server"* ]] || fail "fig-ps table missing Param Server row: $pstable"
echo "serve_smoke: fig-ps cell OK"

# 1c. One mhalias cell: the Metropolis-Hastings sampler tier must run
# end to end through the service (the spec's sampler field survives the
# JSON round trip and reaches the HMM task).
MH_SPEC='{"figure":"fig3b","row":"Giraph","col":"5m","iters":1,"scalediv":0.02,"sampler":"mhalias"}'
resp=$(curl -sf -X POST "$BASE/v1/runs" -d "$MH_SPEC") || fail "mhalias submit rejected: $resp"
mhid=$(echo "$resp" | jfield id)
[ -n "$mhid" ] || fail "no run id in: $resp"
state=""
for _ in $(seq 1 600); do
  state=$(curl -sf "$BASE/v1/runs/$mhid" | jfield state)
  case "$state" in
    done) break ;;
    failed|canceled) fail "run $mhid ended $state" ;;
  esac
  sleep 0.5
done
[ "$state" = "done" ] || fail "mhalias run $mhid did not finish (state: $state)"
mhtable=$(curl -sf "$BASE/v1/runs/$mhid/table") || fail "mhalias table download failed"
[[ "$mhtable" == *"Giraph"* ]] || fail "mhalias table missing Giraph row: $mhtable"
echo "serve_smoke: mhalias cell OK"

# 2. The identical spec must be a cache hit answered in <100ms.
t0=$(date +%s%N)
resp2=$(curl -sf -X POST "$BASE/v1/runs" -d "$SPEC")
t1=$(date +%s%N)
ms=$(( (t1 - t0) / 1000000 ))
echo "$resp2" | grep -q '"cached": true' || fail "second request not cached: $resp2"
[ "$(echo "$resp2" | jfield id)" = "$id" ] || fail "cache hit landed on a different job: $resp2"
[ "$ms" -lt 100 ] || fail "cached response took ${ms}ms (>= 100ms)"
echo "serve_smoke: cache hit in ${ms}ms"

# 3. Artifacts: the rendered table and both trace downloads. Substring
# checks instead of `... | grep -q`: grep quits at the first match and
# the upstream write then fails the pipeline under pipefail.
table=$(curl -sf "$BASE/v1/runs/$id/table") || fail "table download failed"
[[ "$table" == *GMM* ]] || fail "table body missing figure title: $table"
chrome=$(curl -sf "$BASE/v1/runs/$id/trace") || fail "chrome trace download failed"
[[ "$chrome" == *'"traceEvents"'* ]] || fail "chrome trace download broken"
csv=$(curl -sf "$BASE/v1/runs/$id/trace.csv") || fail "csv trace download failed"
[[ "$csv" == type,cell,cat* ]] || fail "csv trace download broken"
metrics=$(curl -sf "$BASE/v1/metrics") || fail "metrics download failed"
[[ "$metrics" == *'"cache_hits": 1'* ]] || fail "metrics did not count the cache hit"
echo "serve_smoke: table + trace downloads OK"

# 4. SIGTERM must drain gracefully and exit 0.
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
trap - EXIT
[ "$rc" -eq 0 ] || fail "server exited $rc on SIGTERM (want clean drain, 0)"
echo "serve_smoke: graceful drain OK"
echo "serve_smoke: PASS"
