#!/usr/bin/env bash
# Determinism smoke test for the synthetic-dataset generator
# (internal/datagen): generate the checked-in spec twice at 1 worker and
# twice at 8 workers, and require all four runs to print the identical
# canonical SHA-256 dataset fingerprint. Any divergence means the sharded
# RNG derivation regressed (the corpus depends on worker scheduling) —
# this job catches that before a golden table does.
#
# Usage: scripts/datagen_smoke.sh [path-to-mlbench] [spec-file]
set -euo pipefail

CLI="${1:-./mlbench}"
SPEC="${2:-datasets/smoke.yaml}"
OUT="datagen-smoke.fingerprint"

fail() { echo "datagen_smoke: FAIL: $*" >&2; exit 1; }

# fp runs one generation and extracts the fixed-format fingerprint line.
fp() {
  "$CLI" gen -spec "$SPEC" -workers "$1" | sed -n 's/^fingerprint: //p'
}

a=$(fp 1) || fail "generation failed at 1 worker"
b=$(fp 1) || fail "repeat generation failed at 1 worker"
c=$(fp 8) || fail "generation failed at 8 workers"
d=$(fp 8) || fail "repeat generation failed at 8 workers"

for v in "$a" "$b" "$c" "$d"; do
  [ -n "$v" ] || fail "no fingerprint line in gen output"
  [ "${#v}" -eq 64 ] || fail "fingerprint is not 64 hex chars: $v"
done

[ "$a" = "$b" ] || fail "rerun at 1 worker changed the fingerprint: $a vs $b"
[ "$a" = "$c" ] || fail "1 vs 8 workers changed the fingerprint: $a vs $c"
[ "$c" = "$d" ] || fail "rerun at 8 workers changed the fingerprint: $c vs $d"

echo "$a" > "$OUT"
echo "datagen_smoke: fingerprint $a identical across 4 runs (1,1,8,8 workers)"
echo "datagen_smoke: PASS"
